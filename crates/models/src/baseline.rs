//! Detail-extractor wrappers around the traditional sequence models.
//!
//! Both the CRF and HMM baselines train on exactly the same weak token
//! labels as the transformer (Algorithm 1 output), so Table 4 compares
//! modeling power, not supervision.

use crate::crf::{Crf, CrfConfig};
use crate::hmm::{Hmm, HmmConfig};
use crate::traits::DetailExtractor;
use gs_core::{
    decode_details, weak_label_tokens, ExtractedDetails, MultiSpanPolicy, Objective,
    WeakLabelConfig,
};
use gs_text::labels::{repair_iob, LabelSet, Tag};
use gs_text::{pretokenize, Normalizer, PreToken};

/// Weak-labels a set of annotated objectives into (tokens, tags) training
/// sentences, using case-preserving normalization.
pub fn weak_labeled_sentences(
    objectives: &[&Objective],
    labels: &LabelSet,
    config: WeakLabelConfig,
) -> Vec<(Vec<PreToken>, Vec<Tag>)> {
    let normalizer = Normalizer::default();
    objectives
        .iter()
        .filter_map(|o| {
            let annotations = o.annotations.as_ref()?;
            let text = normalizer.normalize(&o.text);
            let tokens = pretokenize(&text);
            if tokens.is_empty() {
                return None;
            }
            let pairs: Vec<(usize, String)> = annotations
                .present()
                .filter_map(|(k, v)| labels.kind_index(k).map(|ki| (ki, v.to_string())))
                .collect();
            let labeling = weak_label_tokens(&tokens, &pairs, labels, config);
            Some((labeling.tokens, labeling.tags))
        })
        .collect()
}

/// CRF-based detail extractor (the paper's traditional baseline).
pub struct CrfExtractor {
    crf: Crf,
    labels: LabelSet,
    normalizer: Normalizer,
    multi_span: MultiSpanPolicy,
}

impl CrfExtractor {
    /// Trains the CRF on weakly labeled objectives.
    pub fn train(
        objectives: &[&Objective],
        labels: &LabelSet,
        crf_config: CrfConfig,
        weak_config: WeakLabelConfig,
    ) -> Self {
        let sentences = weak_labeled_sentences(objectives, labels, weak_config);
        let crf = Crf::train(&sentences, labels, crf_config);
        CrfExtractor {
            crf,
            labels: labels.clone(),
            normalizer: Normalizer::default(),
            multi_span: MultiSpanPolicy::First,
        }
    }

    /// The underlying CRF.
    pub fn crf(&self) -> &Crf {
        &self.crf
    }
}

impl DetailExtractor for CrfExtractor {
    fn name(&self) -> &str {
        "Conditional Random Fields"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        let text = self.normalizer.normalize(text);
        let tokens = pretokenize(&text);
        if tokens.is_empty() {
            return ExtractedDetails::new();
        }
        let mut tags = self.crf.predict(&tokens, &self.labels);
        repair_iob(&mut tags);
        decode_details(&text, &tokens, &tags, &self.labels, self.multi_span)
    }
}

/// HMM-based detail extractor (extended baseline study).
pub struct HmmExtractor {
    hmm: Hmm,
    labels: LabelSet,
    normalizer: Normalizer,
}

impl HmmExtractor {
    /// Trains the HMM on weakly labeled objectives.
    pub fn train(
        objectives: &[&Objective],
        labels: &LabelSet,
        hmm_config: HmmConfig,
        weak_config: WeakLabelConfig,
    ) -> Self {
        let sentences = weak_labeled_sentences(objectives, labels, weak_config);
        let hmm = Hmm::train(&sentences, labels, hmm_config);
        HmmExtractor { hmm, labels: labels.clone(), normalizer: Normalizer::default() }
    }
}

impl DetailExtractor for HmmExtractor {
    fn name(&self) -> &str {
        "Hidden Markov Model"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        let text = self.normalizer.normalize(text);
        let tokens = pretokenize(&text);
        if tokens.is_empty() {
            return ExtractedDetails::new();
        }
        let mut tags = self.hmm.predict(&tokens, &self.labels);
        repair_iob(&mut tags);
        decode_details(&text, &tokens, &tags, &self.labels, MultiSpanPolicy::First)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::Annotations;

    fn corpus() -> Vec<Objective> {
        let verbs = ["Reduce", "Cut", "Lower", "Decrease"];
        let things = ["emissions", "waste", "usage", "consumption"];
        let mut out = Vec::new();
        let mut id = 0;
        for v in verbs {
            for t in things {
                let pct = 10 + (id * 7) % 80;
                let year = 2025 + (id as usize) % 15;
                let text = format!("{v} {t} by {pct}% by {year}.");
                let ann = Annotations::new()
                    .with("Action", v)
                    .with("Qualifier", t)
                    .with("Amount", &format!("{pct}%"))
                    .with("Deadline", &year.to_string());
                out.push(Objective::annotated(id, text, ann));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn weak_labeled_sentences_align() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().collect();
        let labels = LabelSet::sustainability_goals();
        let sentences = weak_labeled_sentences(&refs, &labels, WeakLabelConfig::default());
        assert_eq!(sentences.len(), refs.len());
        for (tokens, tags) in &sentences {
            assert_eq!(tokens.len(), tags.len());
            assert!(tags.iter().any(|t| *t != Tag::O), "every sentence has entities");
        }
    }

    #[test]
    fn crf_extractor_learns_the_pattern() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().collect();
        let labels = LabelSet::sustainability_goals();
        let ex =
            CrfExtractor::train(&refs, &labels, CrfConfig::default(), WeakLabelConfig::default());
        let d = ex.extract("Cut consumption by 33% by 2031.");
        assert_eq!(d.get("Amount"), Some("33%"), "details {:?}", d);
        assert_eq!(d.get("Deadline"), Some("2031"));
    }

    #[test]
    fn hmm_extractor_runs() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().collect();
        let labels = LabelSet::sustainability_goals();
        let ex =
            HmmExtractor::train(&refs, &labels, HmmConfig::default(), WeakLabelConfig::default());
        let d = ex.extract("Reduce waste by 20% by 2027.");
        // The HMM is weaker but must at least produce a well-formed result.
        assert!(d.len() <= labels.num_kinds());
    }

    #[test]
    fn extractors_handle_empty_text() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().collect();
        let labels = LabelSet::sustainability_goals();
        let crf =
            CrfExtractor::train(&refs, &labels, CrfConfig::default(), WeakLabelConfig::default());
        assert!(crf.extract("").is_empty());
    }
}
