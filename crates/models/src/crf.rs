//! Linear-chain conditional random field — the traditional statistical
//! baseline the paper compares against (§4.1, citing Peng & McCallum).
//!
//! Trained by maximizing the regularized conditional log-likelihood with
//! forward-backward gradients and Adagrad updates; decoded with Viterbi.
//! Like every approach in the paper's comparison, the CRF trains on the
//! weak token labels produced by Algorithm 1.

use crate::features::{sentence_features, FeatureConfig};
use gs_text::labels::{LabelSet, Tag};
use gs_text::PreToken;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// CRF training configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrfConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adagrad base learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Feature groups.
    pub features: FeatureConfig,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for CrfConfig {
    fn default() -> Self {
        CrfConfig { epochs: 12, lr: 0.2, l2: 1e-5, features: FeatureConfig::default(), seed: 0 }
    }
}

/// A trained linear-chain CRF.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Crf {
    feature_ids: HashMap<String, usize>,
    /// Emission weights, `[num_features * num_labels]`, feature-major.
    weights: Vec<f64>,
    /// Transition weights, `[(num_labels + 1) * num_labels]`; row
    /// `num_labels` holds start transitions.
    trans: Vec<f64>,
    num_labels: usize,
    config: CrfConfig,
}

const NEG_INF: f64 = -1e30;

impl Crf {
    /// Trains on (tokens, gold tags) sentences with the given label set.
    pub fn train(
        sentences: &[(Vec<PreToken>, Vec<Tag>)],
        labels: &LabelSet,
        config: CrfConfig,
    ) -> Crf {
        let num_labels = labels.num_classes();
        // Build the feature index from training data.
        let mut feature_ids: HashMap<String, usize> = HashMap::new();
        let mut featurized: Vec<(Vec<Vec<usize>>, Vec<usize>)> =
            Vec::with_capacity(sentences.len());
        for (tokens, tags) in sentences {
            assert_eq!(tokens.len(), tags.len(), "token/tag length mismatch");
            let feats = sentence_features(tokens, &config.features);
            let ids: Vec<Vec<usize>> = feats
                .into_iter()
                .map(|tf| {
                    tf.into_iter()
                        .map(|f| {
                            let next = feature_ids.len();
                            *feature_ids.entry(f).or_insert(next)
                        })
                        .collect()
                })
                .collect();
            let gold: Vec<usize> = tags.iter().map(|t| labels.class_id(*t)).collect();
            featurized.push((ids, gold));
        }

        let num_features = feature_ids.len();
        let mut weights = vec![0.0f64; num_features * num_labels];
        let mut trans = vec![0.0f64; (num_labels + 1) * num_labels];
        let mut w_accum = vec![1e-8f64; weights.len()];
        let mut t_accum = vec![1e-8f64; trans.len()];

        let mut order: Vec<usize> = (0..featurized.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let (feats, gold) = &featurized[si];
                if feats.is_empty() {
                    continue;
                }
                sgd_step(
                    feats,
                    gold,
                    num_labels,
                    &mut weights,
                    &mut trans,
                    &mut w_accum,
                    &mut t_accum,
                    config.lr,
                    config.l2,
                );
            }
        }

        Crf { feature_ids, weights, trans, num_labels, config }
    }

    /// Number of distinct features learned.
    pub fn num_features(&self) -> usize {
        self.feature_ids.len()
    }

    /// Predicts tags for a tokenized sentence via Viterbi decoding.
    pub fn predict(&self, tokens: &[PreToken], labels: &LabelSet) -> Vec<Tag> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let feats = sentence_features(tokens, &self.config.features);
        let ids: Vec<Vec<usize>> = feats
            .into_iter()
            .map(|tf| tf.into_iter().filter_map(|f| self.feature_ids.get(&f).copied()).collect())
            .collect();
        let emissions = self.emissions(&ids);
        let path = viterbi(&emissions, &self.trans, self.num_labels);
        path.into_iter().map(|c| labels.tag_of(c)).collect()
    }

    fn emissions(&self, feats: &[Vec<usize>]) -> Vec<f64> {
        let l = self.num_labels;
        let mut em = vec![0.0f64; feats.len() * l];
        for (i, tf) in feats.iter().enumerate() {
            let row = &mut em[i * l..(i + 1) * l];
            for &f in tf {
                let wrow = &self.weights[f * l..(f + 1) * l];
                for (r, &w) in row.iter_mut().zip(wrow) {
                    *r += w;
                }
            }
        }
        em
    }
}

/// One stochastic gradient step on a single sentence (negative
/// log-likelihood with L2), using Adagrad per-coordinate learning rates.
#[allow(clippy::too_many_arguments)]
fn sgd_step(
    feats: &[Vec<usize>],
    gold: &[usize],
    l: usize,
    weights: &mut [f64],
    trans: &mut [f64],
    w_accum: &mut [f64],
    t_accum: &mut [f64],
    lr: f64,
    l2: f64,
) {
    let n = feats.len();
    // Emission scores under current weights.
    let mut em = vec![0.0f64; n * l];
    for (i, tf) in feats.iter().enumerate() {
        let row = &mut em[i * l..(i + 1) * l];
        for &f in tf {
            let wrow = &weights[f * l..(f + 1) * l];
            for (r, &w) in row.iter_mut().zip(wrow) {
                *r += w;
            }
        }
    }

    // Forward-backward in log space.
    let start_row = &trans[l * l..(l + 1) * l];
    let mut alpha = vec![NEG_INF; n * l];
    for y in 0..l {
        alpha[y] = em[y] + start_row[y];
    }
    for i in 1..n {
        for y in 0..l {
            let mut acc = NEG_INF;
            for prev in 0..l {
                let v = alpha[(i - 1) * l + prev] + trans[prev * l + y];
                acc = log_add(acc, v);
            }
            alpha[i * l + y] = acc + em[i * l + y];
        }
    }
    let mut log_z = NEG_INF;
    for y in 0..l {
        log_z = log_add(log_z, alpha[(n - 1) * l + y]);
    }

    let mut beta = vec![NEG_INF; n * l];
    for y in 0..l {
        beta[(n - 1) * l + y] = 0.0;
    }
    for i in (0..n - 1).rev() {
        for y in 0..l {
            let mut acc = NEG_INF;
            for next in 0..l {
                let v = trans[y * l + next] + em[(i + 1) * l + next] + beta[(i + 1) * l + next];
                acc = log_add(acc, v);
            }
            beta[i * l + y] = acc;
        }
    }

    // Gradient = expected - observed. Apply updates directly (Adagrad).
    let apply_w = |idx: usize, grad: f64, weights: &mut [f64], w_accum: &mut [f64]| {
        let g = grad + l2 * weights[idx];
        w_accum[idx] += g * g;
        weights[idx] -= lr * g / w_accum[idx].sqrt();
    };
    let apply_t = |idx: usize, grad: f64, trans: &mut [f64], t_accum: &mut [f64]| {
        let g = grad + l2 * trans[idx];
        t_accum[idx] += g * g;
        trans[idx] -= lr * g / t_accum[idx].sqrt();
    };

    // Unigram marginals -> emission gradients.
    for i in 0..n {
        for y in 0..l {
            let marginal = (alpha[i * l + y] + beta[i * l + y] - log_z).exp();
            let observed = f64::from(gold[i] == y);
            let grad = marginal - observed;
            if grad.abs() < 1e-12 {
                continue;
            }
            for &f in &feats[i] {
                apply_w(f * l + y, grad, weights, w_accum);
            }
        }
    }

    // Start-transition gradients.
    for y in 0..l {
        let marginal = (alpha[y] + beta[y] - log_z).exp();
        let observed = f64::from(gold[0] == y);
        apply_t(l * l + y, marginal - observed, trans, t_accum);
    }

    // Pairwise marginals -> transition gradients.
    for i in 1..n {
        for prev in 0..l {
            for y in 0..l {
                let logm = alpha[(i - 1) * l + prev]
                    + trans[prev * l + y]
                    + em[i * l + y]
                    + beta[i * l + y]
                    - log_z;
                let marginal = logm.exp();
                let observed = f64::from(gold[i - 1] == prev && gold[i] == y);
                let grad = marginal - observed;
                if grad.abs() < 1e-12 {
                    continue;
                }
                apply_t(prev * l + y, grad, trans, t_accum);
            }
        }
    }
}

fn log_add(a: f64, b: f64) -> f64 {
    if a <= NEG_INF {
        return b;
    }
    if b <= NEG_INF {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Viterbi decoding over emission + transition scores.
fn viterbi(em: &[f64], trans: &[f64], l: usize) -> Vec<usize> {
    let n = em.len() / l;
    let mut delta = vec![NEG_INF; n * l];
    let mut back = vec![0usize; n * l];
    let start_row = &trans[l * l..(l + 1) * l];
    for y in 0..l {
        delta[y] = em[y] + start_row[y];
    }
    for i in 1..n {
        for y in 0..l {
            let mut best = NEG_INF;
            let mut arg = 0;
            for prev in 0..l {
                let v = delta[(i - 1) * l + prev] + trans[prev * l + y];
                if v > best {
                    best = v;
                    arg = prev;
                }
            }
            delta[i * l + y] = best + em[i * l + y];
            back[i * l + y] = arg;
        }
    }
    let mut path = vec![0usize; n];
    let mut best = NEG_INF;
    for y in 0..l {
        if delta[(n - 1) * l + y] > best {
            best = delta[(n - 1) * l + y];
            path[n - 1] = y;
        }
    }
    for i in (1..n).rev() {
        path[i - 1] = back[i * l + path[i]];
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_text::pretokenize;

    fn toy_labels() -> LabelSet {
        LabelSet::new(&["Year"])
    }

    /// Builds (tokens, tags) where 4-digit year tokens after "by" are
    /// labeled B-Year — a pattern the CRF must learn from context.
    fn toy_sentences() -> Vec<(Vec<PreToken>, Vec<Tag>)> {
        let texts = [
            "we will finish by 2030 as planned",
            "deliver results by 2025 in europe",
            "founded in 1998 we grew fast",
            "by 2040 everything changes",
            "report published in 2019 and reviewed",
            "complete rollout by 2027 across sites",
            "expansion started in 2015 quietly",
            "targets due by 2035 at latest",
        ];
        texts
            .iter()
            .map(|t| {
                let tokens = pretokenize(t);
                let tags: Vec<Tag> = tokens
                    .iter()
                    .enumerate()
                    .map(|(i, tok)| {
                        let prev_is_by = i > 0 && tokens[i - 1].text == "by";
                        if prev_is_by && tok.text.len() == 4 {
                            Tag::B(0)
                        } else {
                            Tag::O
                        }
                    })
                    .collect();
                (tokens, tags)
            })
            .collect()
    }

    #[test]
    fn learns_contextual_year_pattern() {
        let labels = toy_labels();
        let crf = Crf::train(&toy_sentences(), &labels, CrfConfig::default());
        // "by 2033" -> year; "in 2012" -> not a target year.
        let test = pretokenize("we act by 2033 not in 2012");
        let tags = crf.predict(&test, &labels);
        let year_positions: Vec<usize> =
            tags.iter().enumerate().filter(|(_, t)| **t != Tag::O).map(|(i, _)| i).collect();
        assert_eq!(year_positions, vec![3], "tags: {:?}", tags);
    }

    #[test]
    fn empty_sentence_predicts_empty() {
        let labels = toy_labels();
        let crf = Crf::train(&toy_sentences(), &labels, CrfConfig::default());
        assert!(crf.predict(&[], &labels).is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let labels = toy_labels();
        let a = Crf::train(&toy_sentences(), &labels, CrfConfig::default());
        let b = Crf::train(&toy_sentences(), &labels, CrfConfig::default());
        let test = pretokenize("done by 2031 maybe");
        assert_eq!(a.predict(&test, &labels), b.predict(&test, &labels));
    }

    #[test]
    fn unknown_features_are_ignored_at_test_time() {
        let labels = toy_labels();
        let crf = Crf::train(&toy_sentences(), &labels, CrfConfig::default());
        // Entirely novel vocabulary; must not panic, predicts something.
        let test = pretokenize("zyzzyva quokka by 2042");
        let tags = crf.predict(&test, &labels);
        assert_eq!(tags.len(), 4);
    }

    #[test]
    fn log_add_is_stable() {
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add(NEG_INF, 5.0), 5.0);
        assert_eq!(log_add(3.0, NEG_INF), 3.0);
        let big = log_add(1000.0, 1000.0);
        assert!((big - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn fewer_feature_groups_learn_less_context() {
        let labels = toy_labels();
        let lexical = Crf::train(
            &toy_sentences(),
            &labels,
            CrfConfig { features: FeatureConfig::lexical_only(), ..Default::default() },
        );
        // Without context features the "by YEAR" vs "in YEAR" distinction is
        // invisible for unseen years; both get the same (majority) label.
        let t1 = lexical.predict(&pretokenize("act by 2033"), &labels);
        let t2 = lexical.predict(&pretokenize("act in 2033"), &labels);
        assert_eq!(t1[2], t2[2], "lexical-only CRF cannot separate by context");
    }
}
