//! Keyword-based search baseline.
//!
//! The paper's related work (§6.2, citing Katz et al.) observes that
//! zero-shot LLM extraction "can be inferior even compared to simple
//! keyword-based search methods". This extractor is that simple method: a
//! fixed keyword-window search with no learning and no linguistic
//! heuristics — percents next to "by", years next to date cues — included
//! as an extended baseline.

use crate::traits::DetailExtractor;
use gs_core::ExtractedDetails;
use gs_text::labels::LabelSet;
use gs_text::{pretokenize, Normalizer};

/// The keyword-search detail extractor.
pub struct KeywordSearchExtractor {
    labels: LabelSet,
    normalizer: Normalizer,
}

impl KeywordSearchExtractor {
    /// Creates the extractor for a label set (works with both the
    /// Sustainability Goals and NetZeroFacts schemas).
    pub fn new(labels: &LabelSet) -> Self {
        KeywordSearchExtractor { labels: labels.clone(), normalizer: Normalizer::default() }
    }

    fn field<'a>(&self, candidates: &[&'a str]) -> Option<&'a str> {
        candidates.iter().copied().find(|c| self.labels.kind_index(c).is_some())
    }
}

fn is_year(tok: &str) -> bool {
    tok.len() == 4
        && tok.chars().all(|c| c.is_ascii_digit())
        && (tok.starts_with("19") || tok.starts_with("20"))
}

impl DetailExtractor for KeywordSearchExtractor {
    fn name(&self) -> &str {
        "Keyword Search"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        let text = self.normalizer.normalize(text);
        let tokens = pretokenize(&text);
        let lowers: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
        let mut out = ExtractedDetails::new();

        // Amount: the first "<number> %" pair.
        for i in 1..tokens.len() {
            if lowers[i] == "%" && lowers[i - 1].chars().all(|c| c.is_ascii_digit()) {
                if let Some(f) = self.field(&["Amount", "TargetValue"]) {
                    out.set(f, format!("{}%", tokens[i - 1].text));
                }
                break;
            }
        }

        // Deadline: the first "by <year>".
        for i in 1..tokens.len() {
            if lowers[i - 1] == "by" && is_year(&lowers[i]) {
                if let Some(f) = self.field(&["Deadline", "TargetYear"]) {
                    out.set(f, tokens[i].text.clone());
                }
                break;
            }
        }

        // Baseline: "baseline <year>" or "<year> baseline".
        for i in 0..tokens.len() {
            let hit = (i > 0 && lowers[i - 1] == "baseline" && is_year(&lowers[i]))
                || (i + 1 < tokens.len() && lowers[i + 1] == "baseline" && is_year(&lowers[i]));
            if hit {
                if let Some(f) = self.field(&["Baseline", "ReferenceYear"]) {
                    out.set(f, tokens[i].text.clone());
                }
                break;
            }
        }

        // Keyword search has no notion of actions or qualifier phrases.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extractor() -> KeywordSearchExtractor {
        KeywordSearchExtractor::new(&LabelSet::sustainability_goals())
    }

    #[test]
    fn finds_percent_and_by_year() {
        let d = extractor().extract("Reduce energy consumption by 20% by 2025 (baseline 2017).");
        assert_eq!(d.get("Amount"), Some("20%"));
        assert_eq!(d.get("Deadline"), Some("2025"));
        assert_eq!(d.get("Baseline"), Some("2017"));
        assert_eq!(d.get("Action"), None, "keyword search cannot extract actions");
    }

    #[test]
    fn misses_unkeyworded_patterns() {
        // "no later than" is not in the keyword list; a learnable pattern
        // the fixed search misses.
        let d = extractor().extract("Achieve net-zero no later than 2045.");
        assert_eq!(d.get("Deadline"), None);
        assert_eq!(d.get("Amount"), None, "net-zero is not `<num> %`");
    }

    #[test]
    fn maps_to_netzerofacts_schema() {
        let nzf = LabelSet::netzerofacts();
        let d = KeywordSearchExtractor::new(&nzf)
            .extract("Cut CO2 emissions by 42% by 2035 against a 2019 baseline.");
        assert_eq!(d.get("TargetValue"), Some("42%"));
        assert_eq!(d.get("TargetYear"), Some("2035"));
        assert_eq!(d.get("ReferenceYear"), Some("2019"));
    }

    #[test]
    fn empty_text_extracts_nothing() {
        assert!(extractor().extract("").is_empty());
    }
}
