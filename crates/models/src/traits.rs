//! The common interface every detail-extraction approach implements, so the
//! evaluation harness can compare them uniformly (paper Table 4).

use gs_core::ExtractedDetails;
use std::time::Duration;

/// An approach that extracts structured details from one objective text.
pub trait DetailExtractor {
    /// Display name for result tables.
    fn name(&self) -> &str;

    /// Extracts the key details from a sustainability objective.
    fn extract(&self, text: &str) -> ExtractedDetails;

    /// Simulated latency to charge per `extract` call — nonzero only for
    /// the LLM-prompting simulators, whose real counterparts pay a remote
    /// inference round-trip (see DESIGN.md).
    fn simulated_latency_per_call(&self) -> Duration {
        Duration::ZERO
    }

    /// Simulated one-time setup latency (e.g. prompt engineering rounds);
    /// zero for local models.
    fn simulated_setup_latency(&self) -> Duration {
        Duration::ZERO
    }
}
