//! Sustainability objective detection (the GoalSpotter upstream task,
//! §2.3): classify report text blocks into *objective* vs *noise*.
//!
//! The default detector is a hashed-feature logistic regression — fast
//! enough to sweep the 37k-page deployment corpus on one core. The paper's
//! own detector is a fine-tuned transformer; the pipeline accepts any
//! [`ObjectiveDetector`], and a transformer-backed one can be plugged in
//! where accuracy matters more than throughput.

use crate::features::{looks_like_year, word_shape};
use gs_text::{pretokenize, Normalizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A binary objective-vs-noise classifier over text blocks.
pub trait ObjectiveDetector {
    /// Detection score in [0, 1]; >= 0.5 means objective.
    fn score(&self, text: &str) -> f32;

    /// Whether the block is classified as a sustainability objective.
    fn is_objective(&self, text: &str) -> bool {
        self.score(text) >= 0.5
    }
}

/// Logistic-regression detector configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearDetectorConfig {
    /// Feature-hashing dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LinearDetectorConfig {
    fn default() -> Self {
        LinearDetectorConfig { dim: 1 << 15, epochs: 8, lr: 0.2, l2: 1e-6, seed: 0 }
    }
}

/// Hashed-feature logistic regression detector.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearDetector {
    weights: Vec<f32>,
    bias: f32,
    dim: usize,
    #[serde(skip, default)]
    normalizer: Normalizer,
}

/// FNV-1a over bytes, cheap and deterministic.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn features(normalizer: &Normalizer, text: &str, dim: usize) -> Vec<usize> {
    let text = normalizer.normalize(text);
    let tokens = pretokenize(&text);
    let lowers: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
    let mut out = Vec::with_capacity(lowers.len() * 3 + 4);
    let mut push = |f: String| out.push((fnv1a(&f) % dim as u64) as usize);
    for (i, low) in lowers.iter().enumerate() {
        push(format!("u={low}"));
        push(format!("s={}", word_shape(&tokens[i].text)));
        if i + 1 < lowers.len() {
            push(format!("b={low}_{}", lowers[i + 1]));
        }
    }
    if lowers.iter().any(|l| l == "%") {
        push("has_pct".into());
    }
    if lowers.iter().any(|l| looks_like_year(l)) {
        push("has_year".into());
    }
    push(format!("len={}", (lowers.len() / 5).min(10)));
    out
}

impl LinearDetector {
    /// Trains on (text, is_objective) examples.
    pub fn train(examples: &[(&str, bool)], config: LinearDetectorConfig) -> Self {
        assert!(!examples.is_empty(), "no detector training examples");
        let normalizer = Normalizer::default();
        let featurized: Vec<(Vec<usize>, f32)> = examples
            .iter()
            .map(|(text, y)| (features(&normalizer, text, config.dim), f32::from(*y)))
            .collect();

        let mut weights = vec![0.0f32; config.dim];
        let mut bias = 0.0f32;
        let mut order: Vec<usize> = (0..featurized.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (feats, y) = &featurized[i];
                let z: f32 = bias + feats.iter().map(|&f| weights[f]).sum::<f32>();
                let p = 1.0 / (1.0 + (-z).exp());
                let grad = p - y;
                bias -= config.lr * grad;
                for &f in feats {
                    weights[f] -= config.lr * (grad + config.l2 * weights[f]);
                }
            }
        }
        LinearDetector { weights, bias, dim: config.dim, normalizer }
    }

    /// Rebuilds a detector from saved parts (see [`save_text`](Self::save_text)).
    pub fn from_parts(dim: usize, bias: f32, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), dim, "weight vector must match dim");
        LinearDetector { weights, bias, dim, normalizer: Normalizer::default() }
    }

    /// Serializes the detector as line-oriented text with bit-exact f32
    /// round-trips (hex bit patterns, following the repo's text-serialization
    /// discipline). Only nonzero weights are written, so frozen detectors
    /// stay reviewable in version control.
    pub fn save_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.weights.len() / 4);
        out.push_str("gs-linear-detector v1\n");
        out.push_str(&format!("dim {}\n", self.dim));
        out.push_str(&format!("bias {:08x}\n", self.bias.to_bits()));
        for (i, w) in self.weights.iter().enumerate() {
            if *w != 0.0 {
                out.push_str(&format!("{i} {:08x}\n", w.to_bits()));
            }
        }
        out
    }

    /// Restores a detector from [`save_text`](Self::save_text) output.
    pub fn load_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("gs-linear-detector v1") {
            return Err("not a gs-linear-detector v1 file".to_string());
        }
        let field = |line: Option<&str>, name: &str| -> Result<String, String> {
            let line = line.ok_or_else(|| format!("missing {name} line"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("malformed {name} line"))
        };
        let dim: usize = field(lines.next(), "dim")?.parse().map_err(|_| "bad dim".to_string())?;
        let bias_bits = u32::from_str_radix(&field(lines.next(), "bias")?, 16)
            .map_err(|_| "bad bias bits".to_string())?;
        let mut weights = vec![0.0f32; dim];
        for line in lines {
            let (idx, bits) =
                line.split_once(' ').ok_or_else(|| format!("malformed weight line {line:?}"))?;
            let idx: usize = idx.parse().map_err(|_| "bad weight index".to_string())?;
            if idx >= dim {
                return Err(format!("weight index {idx} out of range for dim {dim}"));
            }
            let bits = u32::from_str_radix(bits, 16).map_err(|_| "bad weight bits".to_string())?;
            weights[idx] = f32::from_bits(bits);
        }
        Ok(LinearDetector::from_parts(dim, f32::from_bits(bias_bits), weights))
    }
}

impl ObjectiveDetector for LinearDetector {
    fn score(&self, text: &str) -> f32 {
        let feats = features(&self.normalizer, text, self.dim);
        let z: f32 = self.bias + feats.iter().map(|&f| self.weights[f]).sum::<f32>();
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> Vec<(&'static str, bool)> {
        vec![
            ("Reduce energy consumption by 20% by 2025.", true),
            ("Reach net-zero carbon emissions by 2040.", true),
            ("Restore 100% of our global water use by 2025.", true),
            ("Achieve zero waste to landfill by 2030.", true),
            ("Cut scope 1 emissions by half by 2035.", true),
            ("Install 1 million thermostats by 2023.", true),
            ("Double renewable electricity sourcing by 2028.", true),
            ("Eliminate single-use plastics across all operations.", true),
            ("This report was prepared in accordance with GRI standards.", false),
            ("The audit committee reviewed the financial statements.", false),
            ("Forward-looking statements involve risks and uncertainties.", false),
            ("Our products are sold in more than 90 countries.", false),
            ("Management discussion and analysis follows in section four.", false),
            ("The photograph shows our apprentices at the facility.", false),
            ("Revenue grew moderately while expenses remained stable.", false),
            ("For definitions of key terms refer to the glossary.", false),
        ]
    }

    #[test]
    fn separates_objectives_from_noise() {
        let det = LinearDetector::train(&training_data(), LinearDetectorConfig::default());
        assert!(det.is_objective("Lower water withdrawal by 15% by 2027."));
        assert!(!det.is_objective("The glossary defines key terms used in this report."));
    }

    #[test]
    fn scores_are_probabilities() {
        let det = LinearDetector::train(&training_data(), LinearDetectorConfig::default());
        for (text, _) in training_data() {
            let s = det.score(text);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = LinearDetector::train(&training_data(), LinearDetectorConfig::default());
        let b = LinearDetector::train(&training_data(), LinearDetectorConfig::default());
        let t = "Expand recycling programs by 2030.";
        assert_eq!(a.score(t), b.score(t));
    }

    #[test]
    #[should_panic(expected = "no detector training examples")]
    fn rejects_empty_training() {
        let _ = LinearDetector::train(&[], LinearDetectorConfig::default());
    }

    #[test]
    fn text_serialization_roundtrips_scores_bit_exactly() {
        let det = LinearDetector::train(&training_data(), LinearDetectorConfig::default());
        let saved = det.save_text();
        let back = LinearDetector::load_text(&saved).expect("load");
        for (text, _) in training_data() {
            assert_eq!(det.score(text).to_bits(), back.score(text).to_bits(), "{text}");
        }
        // And the frozen form is itself stable.
        assert_eq!(back.save_text(), saved);
        assert!(LinearDetector::load_text("nonsense").is_err());
        assert!(LinearDetector::load_text("gs-linear-detector v1\ndim 4\nbias zz").is_err());
        assert!(
            LinearDetector::load_text("gs-linear-detector v1\ndim 4\nbias 00000000\n9 00000000")
                .is_err(),
            "out-of-range index rejected"
        );
    }
}
