//! Pre-flight static validation of classifier configurations via gs-check.
//!
//! [`validate_classifier`] drives the *same* generic
//! [`TokenClassifier::forward`] the trainer uses, but over a gs-check
//! [`SymTape`]: every op's shapes are checked against the shared rules and
//! the autograd graph is linted (dead parameters, detached heads, constants
//! on the gradient path) — all in milliseconds, without computing a single
//! activation. A RoBERTa-like or BERT-like config is validated end to end
//! before any training or serving forward runs.

use super::model::TokenClassifier;
use gs_check::{check_traced, Analysis, SymTape};
use gs_tensor::{Binder, TapeOps};

/// Symbolically traces one full-length forward plus the cross-entropy loss
/// and returns the gs-check analysis. Ids sweep the vocabulary and the
/// position table end to end; one target is `-1` to exercise the ignored
///-position path.
pub fn validate_classifier(model: &TokenClassifier) -> Analysis {
    let store = model.store();
    let vocab =
        store.id("emb.tok").map(|id| store.value(id).rows()).expect("model has no emb.tok table");
    let n = model.config().max_len;
    let num_classes = model.num_classes();

    let sym = SymTape::new();
    let mut binder = Binder::new(&sym);
    let ids: Vec<usize> = (0..n).map(|i| i % vocab).collect();
    let logits = model.forward(&sym, &mut binder, &ids, None);
    let mut targets: Vec<i64> = (0..n).map(|i| (i % num_classes) as i64).collect();
    targets[0] = -1; // BOS-style ignored position
    let loss = sym.cross_entropy(logits, &targets);
    check_traced(sym, Some(loss))
}

/// Panics with every finding (one per line, full provenance) unless
/// [`validate_classifier`] comes back clean. Called by the trainers so a
/// broken configuration fails before the first forward pass.
pub fn assert_classifier_valid(model: &TokenClassifier, context: &str) {
    let analysis = validate_classifier(model);
    if !analysis.is_clean() {
        let report: Vec<String> = analysis.findings.iter().map(ToString::to_string).collect();
        panic!(
            "static graph check failed for {context} ({} finding(s)):\n{}",
            analysis.findings.len(),
            report.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::config::{ModelFamily, TransformerConfig};
    use gs_check::FindingKind;
    use gs_tensor::Tensor;

    fn tiny_config(family: ModelFamily) -> TransformerConfig {
        TransformerConfig {
            name: "tiny".into(),
            family,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            d_ff: 32,
            max_len: 12,
            dropout: 0.1,
            subword_budget: 50,
        }
    }

    #[test]
    fn clean_models_validate_for_both_families() {
        for family in [ModelFamily::Roberta, ModelFamily::Bert] {
            let model = TokenClassifier::new(tiny_config(family), 30, 5, 1);
            let analysis = validate_classifier(&model);
            assert!(analysis.is_clean(), "{family:?}: {:?}", analysis.findings);
            assert!(analysis.params > 0);
        }
    }

    #[test]
    fn store_surgery_with_wrong_gamma_shape_is_caught() {
        let mut model = TokenClassifier::new(tiny_config(ModelFamily::Roberta), 30, 5, 1);
        let id = model.store().id("l0.ln1.g").expect("gamma");
        let d = model.config().d_model;
        model.store_mut().replace(id, Tensor::full(&[d + 1], 1.0));
        let analysis = validate_classifier(&model);
        let f = analysis
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ShapeViolation)
            .expect("shape finding");
        assert_eq!(f.op, "layer_norm");
        assert_eq!(f.scope, "l0.attn");
        // Identical message to the eager panic for the same violation.
        assert!(f.message.starts_with("shape error in layer_norm:"), "{}", f.message);
    }

    #[test]
    fn nan_in_embedding_table_is_caught() {
        let mut model = TokenClassifier::new(tiny_config(ModelFamily::Roberta), 30, 5, 1);
        let id = model.store().id("emb.tok").expect("emb.tok");
        let shape = model.store().value(id).shape().to_vec();
        let mut data = model.store().value(id).data().to_vec();
        data[7] = f32::NAN;
        model.store_mut().replace(id, Tensor::from_vec(shape, data));
        let analysis = validate_classifier(&model);
        let f = analysis
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::NonFiniteParam)
            .expect("non-finite finding");
        assert_eq!(f.label.as_deref(), Some("emb.tok"));
        assert_eq!(f.scope, "emb");
    }

    #[test]
    #[should_panic(expected = "static graph check failed")]
    fn assert_valid_panics_with_context() {
        let mut model = TokenClassifier::new(tiny_config(ModelFamily::Roberta), 30, 5, 1);
        let id = model.store().id("head.w").expect("head.w");
        let d = model.config().d_model;
        // Transposed head: [num_classes, d] instead of [d, num_classes].
        model.store_mut().replace(id, Tensor::zeros(&[5, d]));
        assert_classifier_valid(&model, "unit test");
    }
}
