//! The paper's full development + production pipeline around the
//! transformer (Figure 2):
//!
//! - development: tokenize objectives, run Algorithm 1 on the word level,
//!   project weak labels to subwords, fine-tune the encoder;
//! - production: tokenize a new objective, predict token labels, collapse
//!   to words, decode structured details.

use super::config::{ModelFamily, TrainConfig, TransformerConfig};
use super::model::{timed, TokenClassifier};
use super::pretrain::PretrainedEncoder;
use super::trainer::{train_token_classifier_cb, EpochStats, TrainExample};
use crate::traits::DetailExtractor;
use gs_core::{
    collapse_to_words, decode_details, project_to_subwords, weak_label_tokens, ExtractedDetails,
    MultiSpanPolicy, Objective, WeakLabelConfig, WeakLabelStats,
};
use gs_obs::prof;
use gs_text::labels::{repair_iob, LabelSet, Tag};
use gs_text::{pretokenize, Encoding, Normalizer, NormalizerConfig, PreToken, Tokenizer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// End-to-end options for training a [`TransformerExtractor`].
#[derive(Clone)]
pub struct ExtractorOptions {
    /// Encoder architecture.
    pub model: TransformerConfig,
    /// Optimization hyperparameters.
    pub train: TrainConfig,
    /// Algorithm 1 configuration.
    pub weak_label: WeakLabelConfig,
    /// Multi-span reduction at decode time.
    pub multi_span: MultiSpanPolicy,
    /// A pretrained encoder to fine-tune from (paper setting). `None`
    /// trains from random initialization.
    pub base: Option<Arc<PretrainedEncoder>>,
}

impl Default for ExtractorOptions {
    fn default() -> Self {
        ExtractorOptions {
            model: TransformerConfig::roberta_sim(),
            train: TrainConfig::default(),
            weak_label: WeakLabelConfig::default(),
            multi_span: MultiSpanPolicy::default(),
            base: None,
        }
    }
}

/// A trained transformer-based detail extractor (the GoalSpotter extraction
/// service).
#[derive(Clone)]
pub struct TransformerExtractor {
    name: String,
    labels: LabelSet,
    tokenizer: Tokenizer,
    case_normalizer: Normalizer,
    model: TokenClassifier,
    options: ExtractorOptions,
    /// Per-epoch training losses (Figure 4's convergence data).
    pub train_stats: Vec<EpochStats>,
    /// Weak-supervision quality over the training set.
    pub weak_stats: WeakLabelStats,
}

impl TransformerExtractor {
    /// Trains the extractor on annotated objectives.
    ///
    /// # Panics
    /// Panics if no objective yields a usable training sequence.
    pub fn train(objectives: &[&Objective], labels: &LabelSet, options: ExtractorOptions) -> Self {
        Self::train_with_checkpoints(objectives, labels, options, &mut |_, _| {})
    }

    /// Trains while invoking `on_epoch(epoch_1based, view)` after each
    /// epoch, so callers can measure convergence (paper Figure 4's
    /// epochs/learning-rate study).
    pub fn train_with_checkpoints(
        objectives: &[&Objective],
        labels: &LabelSet,
        options: ExtractorOptions,
        on_epoch: &mut dyn FnMut(usize, &ExtractorView<'_>),
    ) -> Self {
        options.model.validate();
        if let Some(base) = &options.base {
            assert_eq!(
                base.model.config(),
                &options.model,
                "pretrained encoder config differs from the requested model"
            );
        }
        let texts: Vec<&str> = objectives.iter().map(|o| o.text.as_str()).collect();
        let tokenizer = match &options.base {
            Some(base) => base.tokenizer.clone(),
            None => build_tokenizer(&options.model, &texts),
        };
        let case_normalizer = Normalizer::new(NormalizerConfig::default());

        let mut weak_stats = WeakLabelStats::new(labels);
        let mut examples = Vec::with_capacity(objectives.len());
        for o in objectives {
            let Some((example, labeling, annotated_kinds)) = encode_example(
                o,
                labels,
                &tokenizer,
                &case_normalizer,
                options.weak_label,
                options.model.max_len,
            ) else {
                continue;
            };
            weak_stats.record(&labeling, &annotated_kinds);
            examples.push(example);
        }
        assert!(!examples.is_empty(), "no trainable objectives");

        let mut model = match &options.base {
            Some(base) => base.fine_tune_model(labels.num_classes(), options.train.seed),
            None => TokenClassifier::new(
                options.model.clone(),
                tokenizer.vocab().len(),
                labels.num_classes(),
                options.train.seed,
            ),
        };
        let multi_span = options.multi_span;
        let train_stats =
            train_token_classifier_cb(&mut model, &examples, &options.train, &mut |epoch, m| {
                let view = ExtractorView {
                    tokenizer: &tokenizer,
                    case_normalizer: &case_normalizer,
                    labels,
                    model: m,
                    multi_span,
                };
                on_epoch(epoch + 1, &view);
            });

        TransformerExtractor {
            name: options.model.name.clone(),
            labels: labels.clone(),
            tokenizer,
            case_normalizer,
            model,
            options,
            train_stats,
            weak_stats,
        }
    }

    /// The label set this extractor predicts.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The trained encoder (for checkpointing / inspection).
    pub fn model(&self) -> &TokenClassifier {
        &self.model
    }

    /// Internal access for the int8 serving twin ([`super::quant`]).
    pub(crate) fn parts(&self) -> (&Tokenizer, &Normalizer, MultiSpanPolicy) {
        (&self.tokenizer, &self.case_normalizer, self.options.multi_span)
    }

    /// Predicts word-level tags for a new objective, returning the
    /// case-preserved normalized text, its word tokens, and one tag per
    /// word.
    pub fn predict_tags(&self, text: &str) -> (String, Vec<PreToken>, Vec<Tag>) {
        predict_tags_impl(&self.tokenizer, &self.case_normalizer, &self.labels, &self.model, text)
    }

    /// Batched [`predict_tags`](Self::predict_tags): encodes every text,
    /// runs one packed encoder forward over all sequences (see
    /// [`TokenClassifier::predict_classes_batch`]), and decodes each
    /// result. Output is positionally identical to calling `predict_tags`
    /// per text; this is the path the serving layer's micro-batcher uses
    /// to amortize the forward across concurrent requests.
    pub fn predict_tags_batch(&self, texts: &[&str]) -> Vec<(String, Vec<PreToken>, Vec<Tag>)> {
        // Per-text tokenization is independent and dominates the
        // non-forward cost of a batch, so it fans out across the gs-par
        // pool; map_collect preserves index order, keeping the output
        // positionally identical to the serial loop.
        let prof_on = prof::enabled();
        let inputs: Vec<InferenceInput> = gs_par::map_collect(texts.len(), |i| {
            timed(prof_on, "tokenize", "encode", prof::Cost::zero(), || {
                encode_for_inference(
                    &self.tokenizer,
                    &self.case_normalizer,
                    self.model.config().max_len,
                    texts[i],
                )
            })
        });
        let seqs: Vec<&[usize]> = inputs.iter().map(|i| i.ids.as_slice()).collect();
        let classes = self.model.predict_classes_batch(&seqs);
        inputs
            .into_iter()
            .zip(classes)
            .map(|(input, classes)| {
                timed(prof_on, "decode", "collapse", prof::Cost::zero(), || {
                    decode_predictions(&self.labels, input, &classes)
                })
            })
            .collect()
    }

    /// Batched [`DetailExtractor::extract`]: one packed forward for all
    /// texts, then per-text decoding. Positionally identical to calling
    /// `extract` per text.
    pub fn extract_batch(&self, texts: &[&str]) -> Vec<ExtractedDetails> {
        self.predict_tags_batch(texts)
            .into_iter()
            .map(|(case_text, tokens, tags)| {
                if tags.is_empty() {
                    ExtractedDetails::new()
                } else {
                    decode_details(
                        &case_text,
                        &tokens,
                        &tags,
                        &self.labels,
                        self.options.multi_span,
                    )
                }
            })
            .collect()
    }
}

/// Everything the production phase computes before the model forward:
/// case-preserved tokens for decoding plus the BOS/EOS-wrapped id
/// sequence. `ids` is empty when the text has no usable tokens, in which
/// case decoding yields no tags.
pub(crate) struct InferenceInput {
    case_text: String,
    case_tokens: Vec<PreToken>,
    enc: Encoding,
    pub(crate) ids: Vec<usize>,
}

/// Tokenizes `text` for inference: `<s> ids </s>`, truncated to `max_len`.
pub(crate) fn encode_for_inference(
    tokenizer: &Tokenizer,
    case_normalizer: &Normalizer,
    max_len: usize,
    text: &str,
) -> InferenceInput {
    let case_text = case_normalizer.normalize(text);
    let case_tokens = pretokenize(&case_text);
    let enc = tokenizer.encode(text);
    if enc.is_empty() || case_tokens.is_empty() {
        return InferenceInput { case_text, case_tokens, enc, ids: Vec::new() };
    }

    let vocab = tokenizer.vocab();
    let mut ids: Vec<usize> = Vec::with_capacity(enc.ids.len() + 2);
    ids.push(vocab.bos_id() as usize);
    ids.extend(enc.ids.iter().map(|&i| i as usize));
    ids.truncate(max_len - 1);
    ids.push(vocab.eos_id() as usize);
    InferenceInput { case_text, case_tokens, enc, ids }
}

/// Turns predicted subword classes back into word-level tags over the
/// case-preserved tokens.
pub(crate) fn decode_predictions(
    labels: &LabelSet,
    input: InferenceInput,
    classes: &[usize],
) -> (String, Vec<PreToken>, Vec<Tag>) {
    let InferenceInput { case_text, case_tokens, enc, ids } = input;
    if ids.is_empty() {
        return (case_text, case_tokens, Vec::new());
    }

    // Strip specials; positions beyond truncation default to O.
    let content_len = enc.ids.len();
    let mut subword_tags: Vec<Tag> = Vec::with_capacity(content_len);
    for i in 0..content_len {
        let class = classes.get(i + 1).copied().filter(|_| i + 1 < classes.len() - 1);
        subword_tags.push(labels.tag_of(class.unwrap_or(0)));
    }
    let mut word_tags = collapse_to_words(&subword_tags, &enc.word_index, enc.pretokens.len());
    repair_iob(&mut word_tags);

    // The tokenizer's normalization (e.g. BERT lowercasing) must not
    // change word boundaries; if it ever does, fall back to the
    // tokenizer's own tokens for decoding.
    if word_tags.len() == case_tokens.len() {
        (case_text, case_tokens, word_tags)
    } else {
        (enc.text.clone(), enc.pretokens, word_tags)
    }
}

/// Shared production-phase inference, usable both by the trained extractor
/// and by mid-training checkpoint views.
fn predict_tags_impl(
    tokenizer: &Tokenizer,
    case_normalizer: &Normalizer,
    labels: &LabelSet,
    model: &TokenClassifier,
    text: &str,
) -> (String, Vec<PreToken>, Vec<Tag>) {
    let prof_on = prof::enabled();
    let input = timed(prof_on, "tokenize", "encode", prof::Cost::zero(), || {
        encode_for_inference(tokenizer, case_normalizer, model.config().max_len, text)
    });
    let classes = model.predict_classes(&input.ids);
    timed(prof_on, "decode", "collapse", prof::Cost::zero(), || {
        decode_predictions(labels, input, &classes)
    })
}

/// A borrowed view over a model mid-training, letting checkpoint callbacks
/// evaluate extraction quality without cloning the model.
pub struct ExtractorView<'a> {
    tokenizer: &'a Tokenizer,
    case_normalizer: &'a Normalizer,
    labels: &'a LabelSet,
    model: &'a TokenClassifier,
    multi_span: MultiSpanPolicy,
}

impl DetailExtractor for ExtractorView<'_> {
    fn name(&self) -> &str {
        "checkpoint"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        let (case_text, tokens, tags) =
            predict_tags_impl(self.tokenizer, self.case_normalizer, self.labels, self.model, text);
        if tags.is_empty() {
            return ExtractedDetails::new();
        }
        decode_details(&case_text, &tokens, &tags, self.labels, self.multi_span)
    }
}

/// Serializable snapshot of a trained extractor.
#[derive(Serialize, Deserialize)]
struct ExtractorSnapshot {
    name: String,
    labels: LabelSet,
    tokenizer: Tokenizer,
    model_config: TransformerConfig,
    num_classes: usize,
    params: gs_tensor::ParamStore,
    weak_label: WeakLabelConfig,
    multi_span: MultiSpanPolicy,
}

impl TransformerExtractor {
    /// Serializes the trained extractor (tokenizer + weights + config) to a
    /// JSON string.
    pub fn save_json(&self) -> String {
        let snapshot = ExtractorSnapshot {
            name: self.name.clone(),
            labels: self.labels.clone(),
            tokenizer: self.tokenizer.clone(),
            model_config: self.model.config().clone(),
            num_classes: self.model.num_classes(),
            params: self.model.store().clone(),
            weak_label: self.options.weak_label,
            multi_span: self.options.multi_span,
        };
        serde_json::to_string(&snapshot).expect("extractor serializes")
    }

    /// Restores an extractor from [`save_json`](Self::save_json) output.
    pub fn load_json(json: &str) -> std::io::Result<Self> {
        let mut snapshot: ExtractorSnapshot =
            serde_json::from_str(json).map_err(std::io::Error::other)?;
        snapshot.tokenizer.rebuild_index();
        snapshot.params.rebuild_index();
        let model = TokenClassifier::from_store(
            snapshot.model_config.clone(),
            snapshot.num_classes,
            snapshot.params,
        );
        let mut weak_stats = WeakLabelStats::new(&snapshot.labels);
        weak_stats.objectives = 0;
        Ok(TransformerExtractor {
            name: snapshot.name,
            labels: snapshot.labels,
            tokenizer: snapshot.tokenizer,
            case_normalizer: Normalizer::new(NormalizerConfig::default()),
            model,
            options: ExtractorOptions {
                model: snapshot.model_config,
                train: TrainConfig::default(),
                weak_label: snapshot.weak_label,
                multi_span: snapshot.multi_span,
                base: None,
            },
            train_stats: Vec::new(),
            weak_stats,
        })
    }

    /// Assembles an extractor from independently persisted pieces: a label
    /// set, a tokenizer, the encoder config, and a parameter store whose
    /// entries match what [`TokenClassifier`] registers for that config.
    ///
    /// This is the serde-free restore path used by golden-fixture tests:
    /// the tokenizer is rebuilt deterministically from the training corpus
    /// and the weights come from a plain-text checkpoint
    /// (`gs_tensor::serialize::load_params_text`), so extraction behavior
    /// is fully pinned by the fixture files alone.
    pub fn from_parts(
        labels: LabelSet,
        tokenizer: Tokenizer,
        model_config: TransformerConfig,
        num_classes: usize,
        params: gs_tensor::ParamStore,
        multi_span: MultiSpanPolicy,
    ) -> Self {
        let model = TokenClassifier::from_store(model_config.clone(), num_classes, params);
        let mut weak_stats = WeakLabelStats::new(&labels);
        weak_stats.objectives = 0;
        TransformerExtractor {
            name: model_config.name.clone(),
            labels,
            tokenizer,
            case_normalizer: Normalizer::new(NormalizerConfig::default()),
            model,
            options: ExtractorOptions {
                model: model_config,
                train: TrainConfig::default(),
                weak_label: WeakLabelConfig::default(),
                multi_span,
                base: None,
            },
            train_stats: Vec::new(),
            weak_stats,
        }
    }
}

impl DetailExtractor for TransformerExtractor {
    fn name(&self) -> &str {
        &self.name
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        let (case_text, tokens, tags) = self.predict_tags(text);
        if tags.is_empty() {
            return ExtractedDetails::new();
        }
        decode_details(&case_text, &tokens, &tags, &self.labels, self.options.multi_span)
    }
}

/// Builds the family-appropriate tokenizer from training texts.
fn build_tokenizer(config: &TransformerConfig, texts: &[&str]) -> Tokenizer {
    match config.family {
        ModelFamily::Roberta => {
            Tokenizer::train_bpe(texts, Normalizer::default(), config.subword_budget)
        }
        ModelFamily::Bert => {
            let lowercasing =
                Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() });
            Tokenizer::train_wordpiece(texts, lowercasing, config.subword_budget)
        }
    }
}

/// Converts one annotated objective into a training example:
/// weak-label at the word level (case-preserved), project onto this
/// tokenizer's subwords, and wrap with BOS/EOS carrying ignored targets.
fn encode_example(
    objective: &Objective,
    labels: &LabelSet,
    tokenizer: &Tokenizer,
    case_normalizer: &Normalizer,
    weak_config: WeakLabelConfig,
    max_len: usize,
) -> Option<(TrainExample, gs_core::WeakLabeling, Vec<usize>)> {
    let annotations = objective.annotations.as_ref()?;
    let enc = tokenizer.encode(&objective.text);
    if enc.is_empty() {
        return None;
    }

    // Weak-label on case-preserved tokens when boundaries agree with the
    // tokenizer's pre-tokens (they do unless normalization changed token
    // structure), otherwise on the tokenizer's own tokens.
    let case_text = case_normalizer.normalize(&objective.text);
    let case_tokens = pretokenize(&case_text);
    let label_tokens =
        if case_tokens.len() == enc.pretokens.len() { &case_tokens } else { &enc.pretokens };

    let pairs: Vec<(usize, String)> = annotations
        .present()
        .filter_map(|(k, v)| labels.kind_index(k).map(|ki| (ki, v.to_string())))
        .collect();
    let annotated_kinds: Vec<usize> = pairs.iter().map(|(k, _)| *k).collect();
    let labeling = weak_label_tokens(label_tokens, &pairs, labels, weak_config);
    let subword_tags = project_to_subwords(&labeling.tags, &enc.word_index);

    let vocab = tokenizer.vocab();
    let mut ids: Vec<usize> = Vec::with_capacity(enc.ids.len() + 2);
    let mut targets: Vec<i64> = Vec::with_capacity(enc.ids.len() + 2);
    ids.push(vocab.bos_id() as usize);
    targets.push(-1);
    for (id, tag) in enc.ids.iter().zip(&subword_tags) {
        ids.push(*id as usize);
        targets.push(labels.class_id(*tag) as i64);
    }
    ids.truncate(max_len - 1);
    targets.truncate(max_len - 1);
    ids.push(vocab.eos_id() as usize);
    targets.push(-1);

    Some((TrainExample { ids, targets }, labeling, annotated_kinds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::Annotations;

    fn tiny_options(family: ModelFamily) -> ExtractorOptions {
        ExtractorOptions {
            model: TransformerConfig {
                name: format!("tiny-{family:?}"),
                family,
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                max_len: 48,
                dropout: 0.05,
                subword_budget: 300,
            },
            train: TrainConfig {
                epochs: 30,
                lr: 3e-3,
                batch_size: 8,
                seed: 1,
                ..Default::default()
            },
            weak_label: WeakLabelConfig::default(),
            multi_span: MultiSpanPolicy::First,
            base: None,
        }
    }

    /// A small but learnable corpus: the deadline always follows "by", the
    /// amount is always a percent.
    fn corpus() -> Vec<Objective> {
        let verbs = ["Reduce", "Cut", "Lower", "Decrease", "Trim", "Shrink"];
        let things = ["emissions", "waste", "usage", "consumption", "footprint", "intake"];
        let mut out = Vec::new();
        let mut id = 0;
        for (vi, v) in verbs.iter().enumerate() {
            for (ti, t) in things.iter().enumerate() {
                let pct = 5 + (vi * 7 + ti * 13) % 90;
                let year = 2025 + (vi + ti) % 20;
                let text = format!("{v} {t} by {pct}% by {year}.");
                let ann = Annotations::new()
                    .with("Action", v)
                    .with("Qualifier", t)
                    .with("Amount", &format!("{pct}%"))
                    .with("Deadline", &year.to_string());
                out.push(Objective::annotated(id, text, ann));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn trains_and_extracts_on_held_out_text() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().take(30).collect();
        let labels = LabelSet::sustainability_goals();
        let ex = TransformerExtractor::train(&refs, &labels, tiny_options(ModelFamily::Roberta));

        // Weak supervision on this clean corpus matches everything.
        assert!(ex.weak_stats.overall_match_rate() > 0.99);
        // Loss fell substantially.
        let first = ex.train_stats.first().expect("stats").mean_loss;
        let last = ex.train_stats.last().expect("stats").mean_loss;
        assert!(last < first * 0.5, "loss {first} -> {last}");

        // Held-out combination (verb, thing) pair not in the first 30.
        let details = ex.extract("Shrink intake by 33% by 2031.");
        assert_eq!(details.get("Deadline"), Some("2031"), "details: {:?}", details);
        assert_eq!(details.get("Amount"), Some("33%"));
    }

    #[test]
    fn bert_family_trains_too() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().take(24).collect();
        let labels = LabelSet::sustainability_goals();
        let ex = TransformerExtractor::train(&refs, &labels, tiny_options(ModelFamily::Bert));
        let details = ex.extract("Cut waste by 44% by 2033.");
        // BERT-sim lowercases internally but decoding must preserve case.
        assert_eq!(details.get("Deadline"), Some("2033"), "details: {:?}", details);
    }

    #[test]
    fn batch_prediction_matches_single_exactly() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().take(20).collect();
        let labels = LabelSet::sustainability_goals();
        for family in [ModelFamily::Roberta, ModelFamily::Bert] {
            let ex = TransformerExtractor::train(&refs, &labels, tiny_options(family));
            let texts = [
                "Shrink intake by 33% by 2031.",
                "",
                "Cut waste by 44% by 2033.",
                "   ",
                "Reduce emissions by 9% by 2040.",
            ];
            let batched = ex.predict_tags_batch(&texts);
            assert_eq!(batched.len(), texts.len());
            for (text, got) in texts.iter().zip(&batched) {
                assert_eq!(got, &ex.predict_tags(text), "family {family:?}, text {text:?}");
            }
            let details = ex.extract_batch(&texts);
            for (text, got) in texts.iter().zip(&details) {
                assert_eq!(
                    format!("{got:?}"),
                    format!("{:?}", ex.extract(text)),
                    "family {family:?}, text {text:?}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_predicts_empty() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().take(12).collect();
        let labels = LabelSet::sustainability_goals();
        let ex = TransformerExtractor::train(&refs, &labels, tiny_options(ModelFamily::Roberta));
        assert!(ex.predict_tags_batch(&[]).is_empty());
        assert!(ex.extract_batch(&[]).is_empty());
    }

    #[test]
    fn empty_text_extracts_nothing() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().take(12).collect();
        let labels = LabelSet::sustainability_goals();
        let ex = TransformerExtractor::train(&refs, &labels, tiny_options(ModelFamily::Roberta));
        assert!(ex.extract("").is_empty());
        assert!(ex.extract("   ").is_empty());
    }
}
