//! The transformer encoder with a token-classification head, built on the
//! `gs-tensor` autograd tape.
//!
//! Architecture (post-LayerNorm, as in BERT/RoBERTa):
//!
//! ```text
//! h0 = LN(tok_emb[ids] + pos_emb[0..n] (+ seg_emb))
//! for each layer: h = LN(h + MHA(h)); h = LN(h + FFN(h))
//! logits = h W_head + b_head            // [n, num_classes]
//! ```

use super::config::{ModelFamily, TransformerConfig};
use gs_obs::prof;
use gs_tensor::{
    cost, normal, xavier_uniform, Binder, ParamId, ParamStore, Tape, TapeOps, Tensor, Var,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs `f` as profiler op `op` under the explicit `path` when `on` is set.
///
/// The packed forward keys ops by explicit paths instead of the thread-local
/// scope stack because its attention inner loop fans out across gs-par
/// workers, which never see scopes opened on the coordinating thread.
#[inline]
pub(crate) fn timed<R>(
    on: bool,
    path: &str,
    op: &'static str,
    cost: prof::Cost,
    f: impl FnOnce() -> R,
) -> R {
    if !on {
        return f();
    }
    let start = Instant::now();
    let out = f();
    prof::record_at(path, op, start.elapsed().as_nanos() as u64, cost);
    out
}

/// A transformer encoder plus linear token-classification head.
#[derive(Clone)]
pub struct TokenClassifier {
    config: TransformerConfig,
    num_classes: usize,
    store: ParamStore,
}

/// Where dropout masks come from during a forward pass.
///
/// Training normally draws masks from an RNG inline ([`Rng`](Self::Rng)),
/// but data-parallel training pre-draws every mask on the coordinating
/// thread in serial order ([`Masks`](Self::Masks)) so worker threads never
/// touch the RNG — the stream, and therefore the run, stays bit-identical
/// to single-threaded training.
enum DropoutSource<'a> {
    /// Inference: no dropout.
    Off,
    /// Training: draw a fresh mask per dropout site from this RNG.
    Rng(&'a mut StdRng),
    /// Training with masks pre-drawn by
    /// [`TokenClassifier::draw_dropout_masks`], consumed in site order.
    Masks(std::slice::Iter<'a, Tensor>),
}

impl TokenClassifier {
    /// Creates a randomly initialized model for `vocab_size` tokens and
    /// `num_classes` output classes.
    pub fn new(
        config: TransformerConfig,
        vocab_size: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        config.validate();
        assert!(vocab_size > 0 && num_classes > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let d = config.d_model;

        store.register("emb.tok", normal(&mut rng, &[vocab_size, d], 0.02));
        store.register("emb.pos", normal(&mut rng, &[config.max_len, d], 0.02));
        if config.family == ModelFamily::Bert {
            store.register("emb.seg", normal(&mut rng, &[2, d], 0.02));
        }
        store.register("emb.ln.g", Tensor::full(&[d], 1.0));
        store.register("emb.ln.b", Tensor::zeros(&[d]));

        for l in 0..config.n_layers {
            for w in ["wq", "wk", "wv", "wo"] {
                store.register(&format!("l{l}.attn.{w}"), xavier_uniform(&mut rng, d, d));
                store.register(&format!("l{l}.attn.{}", w.replace('w', "b")), Tensor::zeros(&[d]));
            }
            store.register(&format!("l{l}.ln1.g"), Tensor::full(&[d], 1.0));
            store.register(&format!("l{l}.ln1.b"), Tensor::zeros(&[d]));
            store.register(&format!("l{l}.ffn.w1"), xavier_uniform(&mut rng, d, config.d_ff));
            store.register(&format!("l{l}.ffn.b1"), Tensor::zeros(&[config.d_ff]));
            store.register(&format!("l{l}.ffn.w2"), xavier_uniform(&mut rng, config.d_ff, d));
            store.register(&format!("l{l}.ffn.b2"), Tensor::zeros(&[d]));
            store.register(&format!("l{l}.ln2.g"), Tensor::full(&[d], 1.0));
            store.register(&format!("l{l}.ln2.b"), Tensor::zeros(&[d]));
        }
        store.register("head.w", xavier_uniform(&mut rng, d, num_classes));
        store.register("head.b", Tensor::zeros(&[num_classes]));

        TokenClassifier { config, num_classes, store }
    }

    /// Rebuilds a model from persisted parts (see
    /// [`TransformerExtractor::save_json`](super::TransformerExtractor::save_json)).
    ///
    /// # Panics
    /// Panics if the store is missing expected parameters.
    pub fn from_store(config: TransformerConfig, num_classes: usize, store: ParamStore) -> Self {
        config.validate();
        for required in ["emb.tok", "emb.pos", "head.w", "head.b"] {
            assert!(store.id(required).is_some(), "missing parameter {required}");
        }
        TokenClassifier { config, num_classes, store }
    }

    /// The model configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Immutable parameter access (checkpointing).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter access (optimizers, loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar parameter count.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    fn id(&self, name: &str) -> ParamId {
        self.store.id(name).unwrap_or_else(|| panic!("missing parameter {name}"))
    }

    /// Replaces the classification head with a freshly initialized one for
    /// `num_classes` outputs, keeping the encoder and embeddings — the
    /// standard pretrain-then-fine-tune weight surgery.
    pub fn reset_head(&mut self, num_classes: usize, seed: u64) {
        assert!(num_classes > 0);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e3779b9));
        let d = self.config.d_model;
        let w_id = self.id("head.w");
        let b_id = self.id("head.b");
        self.store.replace(w_id, xavier_uniform(&mut rng, d, num_classes));
        self.store.replace(b_id, Tensor::zeros(&[num_classes]));
        self.num_classes = num_classes;
    }

    /// Runs the encoder over `ids` (already truncated to `max_len`),
    /// returning the `[n, num_classes]` logits variable. When `dropout_rng`
    /// is provided the model runs in training mode with inverted dropout.
    ///
    /// Generic over [`TapeOps`], so the same code path drives both the eager
    /// autograd [`Tape`] and the gs-check symbolic tape (shape-only tracing
    /// with no value computation).
    pub fn forward<T: TapeOps>(
        &self,
        tape: &T,
        binder: &mut Binder<'_, T>,
        ids: &[usize],
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let mut source = match dropout_rng {
            Some(rng) => DropoutSource::Rng(rng),
            None => DropoutSource::Off,
        };
        self.forward_impl(tape, binder, ids, &mut source)
    }

    /// [`forward`](Self::forward) with dropout masks pre-drawn by
    /// [`draw_dropout_masks`](Self::draw_dropout_masks), consumed in site
    /// order. This is the worker-thread entry point for data-parallel
    /// training: the coordinating thread draws every batch's masks from the
    /// shared RNG in serial order, then shards the forwards across threads
    /// without any RNG access. Passing an empty slice runs without dropout.
    ///
    /// # Panics
    /// Panics if `masks` is non-empty but shorter than the number of
    /// dropout sites (`1 + 2 * n_layers` when `dropout > 0`).
    pub fn forward_with_masks<T: TapeOps>(
        &self,
        tape: &T,
        binder: &mut Binder<'_, T>,
        ids: &[usize],
        masks: &[Tensor],
    ) -> Var {
        let mut source =
            if masks.is_empty() { DropoutSource::Off } else { DropoutSource::Masks(masks.iter()) };
        self.forward_impl(tape, binder, ids, &mut source)
    }

    /// Draws the dropout masks one [`forward`](Self::forward) over an
    /// `n`-token sequence would draw, in the exact site order the forward
    /// consumes them (embedding output, then per layer: attention output,
    /// FFN output). Returns an empty vector — without touching `rng` —
    /// when the configured dropout probability is zero, mirroring
    /// `forward`'s behavior of not advancing the RNG in that case.
    pub fn draw_dropout_masks(&self, n: usize, rng: &mut StdRng) -> Vec<Tensor> {
        let p = self.config.dropout;
        if p <= 0.0 {
            return Vec::new();
        }
        let keep = 1.0 - p;
        let d = self.config.d_model;
        (0..1 + 2 * self.config.n_layers)
            .map(|_| {
                let mask: Vec<f32> = (0..n * d)
                    .map(|_| if rng.random_bool(keep as f64) { 1.0 / keep } else { 0.0 })
                    .collect();
                Tensor::from_vec(vec![n, d], mask)
            })
            .collect()
    }

    fn forward_impl<T: TapeOps>(
        &self,
        tape: &T,
        binder: &mut Binder<'_, T>,
        ids: &[usize],
        dropout: &mut DropoutSource<'_>,
    ) -> Var {
        let n = ids.len();
        assert!(n > 0, "empty input sequence");
        assert!(n <= self.config.max_len, "sequence of {n} exceeds max_len");
        let d = self.config.d_model;

        // Embeddings.
        tape.push_scope("emb");
        let tok_table = binder.bind(&self.store, self.id("emb.tok"));
        let pos_table = binder.bind(&self.store, self.id("emb.pos"));
        let tok = tape.embed_gather(tok_table, ids);
        let positions: Vec<usize> = (0..n).collect();
        let pos = tape.embed_gather(pos_table, &positions);
        let mut h = tape.add(tok, pos);
        if self.config.family == ModelFamily::Bert {
            let seg_table = binder.bind(&self.store, self.id("emb.seg"));
            // Single-segment inputs: all segment ids are 0.
            let seg = tape.embed_gather(seg_table, &vec![0; n]);
            h = tape.add(h, seg);
        }
        let g = binder.bind(&self.store, self.id("emb.ln.g"));
        let b = binder.bind(&self.store, self.id("emb.ln.b"));
        h = tape.layer_norm(h, g, b);
        h = self.maybe_dropout(tape, h, dropout, &[n, d]);
        tape.pop_scope();

        for l in 0..self.config.n_layers {
            h = self.attention_block(tape, binder, h, l, n, dropout);
            h = self.ffn_block(tape, binder, h, l, n, dropout);
        }

        tape.push_scope("head");
        let w = binder.bind(&self.store, self.id("head.w"));
        let bh = binder.bind(&self.store, self.id("head.b"));
        let logits = tape.matmul(h, w);
        let out = tape.add_bias(logits, bh);
        tape.pop_scope();
        out
    }

    fn attention_block<T: TapeOps>(
        &self,
        tape: &T,
        binder: &mut Binder<'_, T>,
        h: Var,
        layer: usize,
        n: usize,
        dropout: &mut DropoutSource<'_>,
    ) -> Var {
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let bind =
            |binder: &mut Binder<'_, T>, name: String| binder.bind(&self.store, self.id(&name));
        tape.push_scope(&format!("l{layer}.attn"));

        let wq = bind(binder, format!("l{layer}.attn.wq"));
        let bq = bind(binder, format!("l{layer}.attn.bq"));
        let wk = bind(binder, format!("l{layer}.attn.wk"));
        let bk = bind(binder, format!("l{layer}.attn.bk"));
        let wv = bind(binder, format!("l{layer}.attn.wv"));
        let bv = bind(binder, format!("l{layer}.attn.bv"));
        let wo = bind(binder, format!("l{layer}.attn.wo"));
        let bo = bind(binder, format!("l{layer}.attn.bo"));

        let q = tape.add_bias(tape.matmul(h, wq), bq);
        let k = tape.add_bias(tape.matmul(h, wk), bk);
        let v = tape.add_bias(tape.matmul(h, wv), bv);

        let scale = 1.0 / (dh as f32).sqrt();
        let mut heads = Vec::with_capacity(self.config.n_heads);
        for head in 0..self.config.n_heads {
            let (s, e) = (head * dh, (head + 1) * dh);
            let qh = tape.slice_cols(q, s, e);
            let kh = tape.slice_cols(k, s, e);
            let vh = tape.slice_cols(v, s, e);
            let scores = tape.scale(tape.matmul_transb(qh, kh), scale);
            let attn = tape.softmax_last_dim(scores);
            heads.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&heads);
        let mut out = tape.add_bias(tape.matmul(concat, wo), bo);
        out = self.maybe_dropout(tape, out, dropout, &[n, d]);

        let sum = tape.add(h, out);
        let g = bind(binder, format!("l{layer}.ln1.g"));
        let b = bind(binder, format!("l{layer}.ln1.b"));
        let normed = tape.layer_norm(sum, g, b);
        tape.pop_scope();
        normed
    }

    fn ffn_block<T: TapeOps>(
        &self,
        tape: &T,
        binder: &mut Binder<'_, T>,
        h: Var,
        layer: usize,
        n: usize,
        dropout: &mut DropoutSource<'_>,
    ) -> Var {
        let d = self.config.d_model;
        let bind =
            |binder: &mut Binder<'_, T>, name: String| binder.bind(&self.store, self.id(&name));
        tape.push_scope(&format!("l{layer}.ffn"));
        let w1 = bind(binder, format!("l{layer}.ffn.w1"));
        let b1 = bind(binder, format!("l{layer}.ffn.b1"));
        let w2 = bind(binder, format!("l{layer}.ffn.w2"));
        let b2 = bind(binder, format!("l{layer}.ffn.b2"));

        let inner = tape.gelu(tape.add_bias(tape.matmul(h, w1), b1));
        let mut out = tape.add_bias(tape.matmul(inner, w2), b2);
        out = self.maybe_dropout(tape, out, dropout, &[n, d]);

        let sum = tape.add(h, out);
        let g = bind(binder, format!("l{layer}.ln2.g"));
        let b = bind(binder, format!("l{layer}.ln2.b"));
        let normed = tape.layer_norm(sum, g, b);
        tape.pop_scope();
        normed
    }

    fn maybe_dropout<T: TapeOps>(
        &self,
        tape: &T,
        x: Var,
        dropout: &mut DropoutSource<'_>,
        shape: &[usize],
    ) -> Var {
        let p = self.config.dropout;
        if p <= 0.0 {
            return x;
        }
        match dropout {
            DropoutSource::Off => x,
            DropoutSource::Rng(rng) => {
                let keep = 1.0 - p;
                let volume: usize = shape.iter().product();
                let mask: Vec<f32> = (0..volume)
                    .map(|_| if rng.random_bool(keep as f64) { 1.0 / keep } else { 0.0 })
                    .collect();
                tape.dropout_with_mask(x, Tensor::from_vec(shape.to_vec(), mask))
            }
            DropoutSource::Masks(iter) => {
                let mask = iter.next().expect("ran out of pre-drawn dropout masks").clone();
                assert_eq!(mask.shape(), shape, "pre-drawn dropout mask shape");
                tape.dropout_with_mask(x, mask)
            }
        }
    }

    /// Predicts class ids for a sequence (inference mode, no dropout).
    pub fn predict_classes(&self, ids: &[usize]) -> Vec<usize> {
        if ids.is_empty() {
            return Vec::new();
        }
        gs_tensor::arena::scope(|| {
            let truncated = &ids[..ids.len().min(self.config.max_len)];
            let tape = Tape::new();
            let mut binder = Binder::new(&tape);
            let logits = self.forward(&tape, &mut binder, truncated, None);
            let mut classes = tape.value(logits).argmax_rows();
            // Truncated tail: repeat the O class (0) so callers get one class
            // per input id.
            classes.resize(ids.len(), 0);
            classes
        })
    }

    /// Batched [`predict_classes`](Self::predict_classes): packs every
    /// sequence into one `[total_tokens, d]` activation matrix so the
    /// row-wise layers (embeddings, QKV/FFN projections, layer norms, and
    /// the classification head) run as a handful of large matrix products
    /// instead of one small product per request, while attention is
    /// evaluated per sequence — tokens never attend across sequence
    /// boundaries, so results are identical to the one-at-a-time path.
    ///
    /// This is the serving hot path: it skips the autograd tape entirely
    /// (no gradients at inference), which also removes the per-op value
    /// cloning the taped forward pays.
    pub fn predict_classes_batch(&self, seqs: &[&[usize]]) -> Vec<Vec<usize>> {
        let packed = pack_sequences(seqs, self.config.max_len);
        if packed.flat_ids.is_empty() {
            return seqs.iter().map(|_| Vec::new()).collect();
        }

        // Arena scope: every kernel buffer the packed forward frees is
        // recycled into the next allocation, so steady-state serving does no
        // per-op heap allocation (pinned by tests/arena_flatness.rs).
        let classes = gs_tensor::arena::scope(|| {
            let h = self.forward_packed(&packed.flat_ids, &packed.positions, &packed.ranges);
            timed(prof::enabled(), "head", "argmax", cost::map(h.len(), 1), || h.argmax_rows())
        });
        packed.unpack_classes(seqs, &classes)
    }

    /// Raw `[n, num_classes]` logits for one sequence (inference mode,
    /// truncated to `max_len`), via the packed forward. Exposed so the int8
    /// quantization tolerance suite can compare per-logit error against the
    /// f32 path; not a serving entry point.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn logits(&self, ids: &[usize]) -> Tensor {
        assert!(!ids.is_empty(), "empty input sequence");
        let n = ids.len().min(self.config.max_len);
        let positions: Vec<usize> = (0..n).collect();
        let ranges = vec![Some((0, n))];
        gs_tensor::arena::scope(|| self.forward_packed(&ids[..n], &positions, &ranges))
    }

    /// The packed inference forward shared by
    /// [`predict_classes_batch`](Self::predict_classes_batch): returns the
    /// `[total_tokens, num_classes]` logits. Every operation replicates
    /// the taped forward's math exactly (same kernels, same evaluation
    /// order per row), which the batch-equivalence tests pin down.
    fn forward_packed(
        &self,
        flat_ids: &[usize],
        positions: &[usize],
        ranges: &[Option<(usize, usize)>],
    ) -> Tensor {
        let p = |name: &str| self.store.value(self.id(name));
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let seq_ranges: Vec<(usize, usize)> = ranges.iter().flatten().copied().collect();
        let rows = flat_ids.len();
        // Latched once: keeps the disabled path to one atomic load per
        // forward and makes enable/disable races mid-forward harmless.
        let prof = prof::enabled();

        // Embeddings: token + position (+ segment 0 for BERT), layer norm.
        let tok = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
            p("emb.tok").gather_rows(flat_ids)
        });
        let pos = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
            p("emb.pos").gather_rows(positions)
        });
        let mut h =
            timed(prof, "emb", "add", cost::zip(rows * d, 1), || tok.zip_map(&pos, |x, y| x + y));
        if self.config.family == ModelFamily::Bert {
            let seg = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
                p("emb.seg").gather_rows(&vec![0; rows])
            });
            h = timed(prof, "emb", "add", cost::zip(rows * d, 1), || h.zip_map(&seg, |x, y| x + y));
        }
        h = timed(prof, "emb", "layer_norm", cost::layer_norm(rows, d), || {
            layer_norm_rows(&h, p("emb.ln.g"), p("emb.ln.b"))
        });

        for l in 0..self.config.n_layers {
            let attn = format!("l{l}.attn");
            // Attention block: projections are batched; score/softmax/mix
            // run per sequence so attention stays within each request.
            let project = |w: &str, b: &str| {
                let mm = timed(prof, &attn, "matmul", cost::matmul(rows, d, d), || {
                    h.matmul(p(&format!("l{l}.attn.{w}")))
                });
                timed(prof, &attn, "add_bias", cost::zip(rows * d, 1), || {
                    add_bias_rows(mm, p(&format!("l{l}.attn.{b}")))
                })
            };
            let q = project("wq", "bq");
            let k = project("wk", "bk");
            let v = project("wv", "bv");
            let scale = 1.0 / (dh as f32).sqrt();
            // Each sequence's attention is independent of every other's, so
            // the per-sequence mixes fan out across the gs-par pool; results
            // are concatenated in sequence order, making the output (and
            // thus serving responses) bit-identical to the serial loop.
            // Worker threads record through explicit paths (`timed`), so the
            // profile merges per-sequence work under this layer's key.
            let per_seq: Vec<Vec<f32>> = gs_par::map_collect(seq_ranges.len(), |si| {
                let (start, n) = seq_ranges[si];
                let (qs, ks, vs) = timed(prof, &attn, "slice_rows", cost::copy(3 * n * d), || {
                    (
                        q.slice_rows(start, start + n),
                        k.slice_rows(start, start + n),
                        v.slice_rows(start, start + n),
                    )
                });
                let mut heads = Vec::with_capacity(self.config.n_heads);
                for head in 0..self.config.n_heads {
                    let (s, e) = (head * dh, (head + 1) * dh);
                    let (qh, kh, vh) =
                        timed(prof, &attn, "slice_cols", cost::copy(3 * n * dh), || {
                            (qs.slice_cols(s, e), ks.slice_cols(s, e), vs.slice_cols(s, e))
                        });
                    let scores =
                        timed(prof, &attn, "matmul_transb", cost::matmul(n, dh, n), || {
                            qh.matmul_transb(&kh)
                        });
                    let scores = timed(prof, &attn, "scale", cost::map(n * n, 1), || {
                        scores.map(|x| x * scale)
                    });
                    let weights = timed(prof, &attn, "softmax", cost::softmax(n, n), || {
                        scores.softmax_last_dim()
                    });
                    heads.push(timed(prof, &attn, "matmul", cost::matmul(n, n, dh), || {
                        weights.matmul(&vh)
                    }));
                }
                let head_refs: Vec<&Tensor> = heads.iter().collect();
                timed(prof, &attn, "concat_cols", cost::copy(n * d), || {
                    Tensor::concat_cols(&head_refs).into_data()
                })
            });
            let concat = timed(prof, &attn, "concat_cols", cost::copy(rows * d), || {
                let mut mixed = gs_tensor::arena::alloc_empty(h.len());
                for seq in per_seq {
                    mixed.extend_from_slice(&seq);
                    gs_tensor::arena::recycle(seq);
                }
                Tensor::from_vec(vec![rows, d], mixed)
            });
            let mm = timed(prof, &attn, "matmul", cost::matmul(rows, d, d), || {
                concat.matmul(p(&format!("l{l}.attn.wo")))
            });
            let out = timed(prof, &attn, "add_bias", cost::zip(rows * d, 1), || {
                add_bias_rows(mm, p(&format!("l{l}.attn.bo")))
            });
            let sum =
                timed(prof, &attn, "add", cost::zip(rows * d, 1), || h.zip_map(&out, |x, y| x + y));
            h = timed(prof, &attn, "layer_norm", cost::layer_norm(rows, d), || {
                layer_norm_rows(&sum, p(&format!("l{l}.ln1.g")), p(&format!("l{l}.ln1.b")))
            });

            // FFN block, fully batched.
            let ffn = format!("l{l}.ffn");
            let d_ff = self.config.d_ff;
            let mm = timed(prof, &ffn, "matmul", cost::matmul(rows, d, d_ff), || {
                h.matmul(p(&format!("l{l}.ffn.w1")))
            });
            let pre = timed(prof, &ffn, "add_bias", cost::zip(rows * d_ff, 1), || {
                add_bias_rows(mm, p(&format!("l{l}.ffn.b1")))
            });
            let inner = timed(prof, &ffn, "gelu", cost::gelu(rows * d_ff), || pre.gelu_forward());
            let mm = timed(prof, &ffn, "matmul", cost::matmul(rows, d_ff, d), || {
                inner.matmul(p(&format!("l{l}.ffn.w2")))
            });
            let out = timed(prof, &ffn, "add_bias", cost::zip(rows * d, 1), || {
                add_bias_rows(mm, p(&format!("l{l}.ffn.b2")))
            });
            let sum =
                timed(prof, &ffn, "add", cost::zip(rows * d, 1), || h.zip_map(&out, |x, y| x + y));
            h = timed(prof, &ffn, "layer_norm", cost::layer_norm(rows, d), || {
                layer_norm_rows(&sum, p(&format!("l{l}.ln2.g")), p(&format!("l{l}.ln2.b")))
            });
        }

        let mm = timed(prof, "head", "matmul", cost::matmul(rows, d, self.num_classes), || {
            h.matmul(p("head.w"))
        });
        timed(prof, "head", "add_bias", cost::zip(rows * self.num_classes, 1), || {
            add_bias_rows(mm, p("head.b"))
        })
    }
}

/// Sequences packed into one flat id stream for a batched forward, with
/// enough bookkeeping to scatter per-token results back to their inputs.
/// Shared between the f32 and int8 packed forwards so both paths have
/// identical packing, truncation, and empty-sequence semantics.
pub(crate) struct PackedSeqs {
    /// Every non-empty sequence's ids (truncated to `max_len`), contiguous.
    pub(crate) flat_ids: Vec<usize>,
    /// Position index of each flat id within its own sequence.
    pub(crate) positions: Vec<usize>,
    /// Per input sequence: `Some((start, len))` into `flat_ids`, or `None`
    /// for empty inputs.
    pub(crate) ranges: Vec<Option<(usize, usize)>>,
}

/// Packs non-empty sequences (truncated to `max_len`) into one flat stream.
pub(crate) fn pack_sequences(seqs: &[&[usize]], max_len: usize) -> PackedSeqs {
    let mut flat_ids: Vec<usize> = Vec::new();
    let mut positions: Vec<usize> = Vec::new();
    let mut ranges: Vec<Option<(usize, usize)>> = Vec::with_capacity(seqs.len());
    for seq in seqs {
        if seq.is_empty() {
            ranges.push(None);
            continue;
        }
        let n = seq.len().min(max_len);
        let start = flat_ids.len();
        flat_ids.extend_from_slice(&seq[..n]);
        positions.extend(0..n);
        ranges.push(Some((start, n)));
    }
    PackedSeqs { flat_ids, positions, ranges }
}

impl PackedSeqs {
    /// Scatters flat per-token classes back to one vector per input
    /// sequence, padding truncated tails with the O class (0).
    pub(crate) fn unpack_classes(&self, seqs: &[&[usize]], classes: &[usize]) -> Vec<Vec<usize>> {
        seqs.iter()
            .zip(&self.ranges)
            .map(|(seq, range)| match range {
                None => Vec::new(),
                Some((start, n)) => {
                    let mut out = classes[*start..*start + *n].to_vec();
                    out.resize(seq.len(), 0);
                    out
                }
            })
            .collect()
    }
}

/// Adds a `[d]` bias to every row of `[n, d]` — the inference twin of
/// `Tape::add_bias` (same accumulation order for bitwise-equal results).
/// Shared with the int8 serving path in [`super::quant`].
pub(crate) fn add_bias_rows(mut x: Tensor, bias: &Tensor) -> Tensor {
    assert_eq!(x.cols(), bias.len(), "add_bias width mismatch");
    for i in 0..x.rows() {
        for (o, &bv) in x.row_mut(i).iter_mut().zip(bias.data()) {
            *o += bv;
        }
    }
    x
}

/// Row-wise layer norm — the inference twin of `Tape::layer_norm` (same
/// epsilon and evaluation order).
/// Shared with the int8 serving path in [`super::quant`].
pub(crate) fn layer_norm_rows(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> Tensor {
    const EPS: f32 = 1e-5;
    let d = x.cols();
    assert_eq!(gamma.len(), d, "layer_norm gamma width");
    assert_eq!(beta.len(), d, "layer_norm beta width");
    let n = x.rows();
    let mut out = gs_tensor::arena::alloc_zeroed(x.len());
    for r in 0..n {
        let row = x.row(r);
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        for j in 0..d {
            out[r * d + j] = (row[j] - mean) * istd * gamma.data()[j] + beta.data()[j];
        }
    }
    Tensor::from_vec(vec![n, d], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_tensor::Optimizer;

    fn tiny_config() -> TransformerConfig {
        TransformerConfig {
            name: "tiny".into(),
            family: ModelFamily::Roberta,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 16,
            dropout: 0.1,
            subword_budget: 50,
        }
    }

    #[test]
    fn forward_shapes_are_correct() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 1);
        let tape = Tape::new();
        let mut binder = Binder::new(&tape);
        let logits = model.forward(&tape, &mut binder, &[1, 5, 9, 2], None);
        assert_eq!(tape.value(logits).shape(), &[4, 5]);
        assert!(!tape.value(logits).has_non_finite());
    }

    #[test]
    fn bert_family_adds_segment_embeddings() {
        let mut cfg = tiny_config();
        cfg.family = ModelFamily::Bert;
        let model = TokenClassifier::new(cfg, 30, 5, 1);
        assert!(model.store().id("emb.seg").is_some());
        let tape = Tape::new();
        let mut binder = Binder::new(&tape);
        let logits = model.forward(&tape, &mut binder, &[3, 4], None);
        assert_eq!(tape.value(logits).shape(), &[2, 5]);
    }

    #[test]
    fn deterministic_init_per_seed() {
        let a = TokenClassifier::new(tiny_config(), 30, 5, 7);
        let b = TokenClassifier::new(tiny_config(), 30, 5, 7);
        assert_eq!(a.predict_classes(&[1, 2, 3]), b.predict_classes(&[1, 2, 3]));
    }

    #[test]
    fn overfits_single_sequence() {
        // One gradient sanity check on the whole stack: a tiny model must be
        // able to memorize one labeling.
        let mut model = TokenClassifier::new(tiny_config(), 20, 3, 3);
        let ids = [4usize, 7, 9, 11];
        let targets = [0i64, 1, 2, 0];
        let mut opt = Optimizer::adam(5e-3);
        let mut dropout_rng = StdRng::seed_from_u64(9);
        let mut last_loss = f32::INFINITY;
        for step in 0..120 {
            let tape = Tape::new();
            let mut binder = Binder::new(&tape);
            let logits = model.forward(&tape, &mut binder, &ids, Some(&mut dropout_rng));
            let loss = tape.cross_entropy(logits, &targets);
            let loss_val = tape.value(loss).item();
            let mut grads = tape.backward(loss);
            binder.accumulate(&mut grads, model.store_mut());
            model.store_mut().clip_grad_norm(5.0);
            opt.step(model.store_mut());
            if step == 119 {
                last_loss = loss_val;
            }
        }
        assert!(last_loss < 0.5, "loss did not fall: {last_loss}");
        assert_eq!(model.predict_classes(&ids), vec![0, 1, 2, 0]);
    }

    #[test]
    fn predict_handles_truncation() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 1);
        let long_ids: Vec<usize> = (0..25).map(|i| i % 30).collect();
        let classes = model.predict_classes(&long_ids);
        assert_eq!(classes.len(), 25);
    }

    #[test]
    fn empty_input_predicts_empty() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 1);
        assert!(model.predict_classes(&[]).is_empty());
    }

    #[test]
    fn batched_prediction_matches_single_roberta() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 11);
        let seqs: Vec<Vec<usize>> = vec![
            vec![1, 5, 9, 2],
            vec![3],
            vec![7, 7, 7, 7, 7, 7],
            (0..25).map(|i| i % 30).collect(), // exceeds max_len: truncated
        ];
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let batched = model.predict_classes_batch(&refs);
        for (seq, batch_out) in seqs.iter().zip(&batched) {
            assert_eq!(batch_out, &model.predict_classes(seq));
        }
    }

    #[test]
    fn batched_prediction_matches_single_bert() {
        let mut cfg = tiny_config();
        cfg.family = ModelFamily::Bert;
        let model = TokenClassifier::new(cfg, 30, 5, 13);
        let seqs: Vec<Vec<usize>> = vec![vec![2, 4, 6], vec![1, 1], vec![9, 8, 7, 6, 5]];
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let batched = model.predict_classes_batch(&refs);
        for (seq, batch_out) in seqs.iter().zip(&batched) {
            assert_eq!(batch_out, &model.predict_classes(seq));
        }
    }

    #[test]
    fn batched_prediction_handles_empty_and_all_empty() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 11);
        let out = model.predict_classes_batch(&[&[][..], &[1, 2][..], &[][..]]);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_empty());
        assert_eq!(out[1], model.predict_classes(&[1, 2]));
        assert!(out[2].is_empty());
        assert_eq!(model.predict_classes_batch(&[]), Vec::<Vec<usize>>::new());
        assert_eq!(model.predict_classes_batch(&[&[][..]]), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn packed_forward_records_profile() {
        let model = TokenClassifier::new(tiny_config(), 30, 5, 1);
        prof::reset();
        prof::set_enabled(true);
        let out = model.predict_classes_batch(&[&[1, 2, 3][..], &[4, 5][..]]);
        prof::set_enabled(false);
        assert_eq!(out.len(), 2);
        let snap = prof::snapshot();
        // Presence only: the profiler is process-global, so concurrent tests
        // may add rows; exact counts are pinned by gs-obs's own tests.
        for (path, op) in [
            ("emb", "embed_gather"),
            ("emb", "layer_norm"),
            ("l0.attn", "matmul"),
            ("l0.attn", "softmax"),
            ("l0.ffn", "gelu"),
            ("head", "matmul"),
            ("head", "argmax"),
        ] {
            assert!(
                snap.rows.iter().any(|r| r.path == path && r.op == op),
                "missing profiled op {path}/{op}"
            );
        }
        let mm = snap.rows.iter().find(|r| r.path == "l0.ffn" && r.op == "matmul").unwrap();
        assert!(mm.flops > 0 && mm.bytes > 0);
        prof::reset();
    }

    #[test]
    fn param_count_scales_with_layers() {
        let base = TokenClassifier::new(tiny_config(), 30, 5, 1).num_weights();
        let mut cfg = tiny_config();
        cfg.n_layers = 2;
        let deeper = TokenClassifier::new(cfg, 30, 5, 1).num_weights();
        assert!(deeper > base);
    }
}
