//! Transformer encoder configurations mirroring the paper's model ablation
//! (Figure 4): RoBERTa-style vs BERT-style, each in an original and a
//! distilled variant.
//!
//! Substitution note (DESIGN.md): the paper fine-tunes pretrained
//! HuggingFace checkpoints; we train architecture-faithful small encoders
//! from scratch. "RoBERTa-style" here means BPE subwords, case-preserving
//! normalization, and no segment embeddings; "BERT-style" means
//! WordPiece subwords, lowercasing, and segment embeddings. "Distilled"
//! halves the layer count, as DistilBERT/DistilRoBERTa do.

use serde::{Deserialize, Serialize};

/// Model family, deciding the tokenizer and embedding layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelFamily {
    /// BPE subwords, case kept, no segment embeddings.
    Roberta,
    /// WordPiece subwords, lowercased, segment embeddings.
    Bert,
}

/// Hyperparameters of an encoder.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Human-readable variant name.
    pub name: String,
    /// Model family.
    pub family: ModelFamily,
    /// Hidden width.
    pub d_model: usize,
    /// Attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Encoder layers.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (subwords incl. specials).
    pub max_len: usize,
    /// Dropout probability during training.
    pub dropout: f32,
    /// Subword vocabulary budget: BPE merge count (RoBERTa family) or
    /// WordPiece piece budget (BERT family).
    pub subword_budget: usize,
}

impl TransformerConfig {
    /// RoBERTa-style base encoder (the paper's default model).
    pub fn roberta_sim() -> Self {
        TransformerConfig {
            name: "RoBERTa-sim".into(),
            family: ModelFamily::Roberta,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_len: 96,
            dropout: 0.1,
            subword_budget: 1200,
        }
    }

    /// Distilled RoBERTa-style encoder (half the layers).
    pub fn distilroberta_sim() -> Self {
        TransformerConfig { name: "DistilRoBERTa-sim".into(), n_layers: 1, ..Self::roberta_sim() }
    }

    /// BERT-style base encoder.
    pub fn bert_sim() -> Self {
        TransformerConfig {
            name: "BERT-sim".into(),
            family: ModelFamily::Bert,
            subword_budget: 1600,
            ..Self::roberta_sim()
        }
    }

    /// Distilled BERT-style encoder.
    pub fn distilbert_sim() -> Self {
        TransformerConfig { name: "DistilBERT-sim".into(), n_layers: 1, ..Self::bert_sim() }
    }

    /// All four variants evaluated in Figure 4's model ablation.
    pub fn figure4_variants() -> Vec<TransformerConfig> {
        vec![
            Self::roberta_sim(),
            Self::distilroberta_sim(),
            Self::bert_sim(),
            Self::distilbert_sim(),
        ]
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "d_model must divide into heads");
        self.d_model / self.n_heads
    }

    /// Validates internal consistency.
    pub fn validate(&self) {
        assert!(self.d_model > 0 && self.n_heads > 0 && self.n_layers > 0);
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.n_heads
        );
        assert!(self.max_len >= 4, "max_len too small");
        assert!((0.0..1.0).contains(&self.dropout));
    }
}

/// Training hyperparameters (paper §3.3: Adam, lr 5e-5, batch 16, up to 10
/// epochs — our from-scratch setting scales the learning rate up, see
/// DESIGN.md).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Warmup fraction of total steps.
    pub warmup_frac: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Seed for init, shuffling, and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            lr: 2e-3,
            batch_size: 16,
            warmup_frac: 0.1,
            clip_norm: 1.0,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_consistent() {
        for cfg in TransformerConfig::figure4_variants() {
            cfg.validate();
            assert_eq!(cfg.d_head() * cfg.n_heads, cfg.d_model);
        }
    }

    #[test]
    fn distilled_variants_have_fewer_layers() {
        assert!(
            TransformerConfig::distilroberta_sim().n_layers
                < TransformerConfig::roberta_sim().n_layers
        );
        assert!(
            TransformerConfig::distilbert_sim().n_layers < TransformerConfig::bert_sim().n_layers
        );
    }

    #[test]
    fn families_differ_between_variants() {
        assert_eq!(TransformerConfig::roberta_sim().family, ModelFamily::Roberta);
        assert_eq!(TransformerConfig::bert_sim().family, ModelFamily::Bert);
    }
}
