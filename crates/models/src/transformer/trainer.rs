//! Training loop for the token classifier: per-sequence tapes, gradient
//! accumulation over a mini-batch (paper batch size 16), Adam with linear
//! warmup/decay, and global-norm clipping.

use super::check::assert_classifier_valid;
use super::config::TrainConfig;
use super::model::{timed, TokenClassifier};
use gs_check::GrowthMonitor;
use gs_obs::prof;
use gs_tensor::{cost, Binder, Optimizer, Tape, Tensor, WarmupLinearSchedule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One training sequence: subword ids and per-subword targets (`-1` =
/// ignored position).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrainExample {
    /// Subword ids (already truncated to the model's `max_len`).
    pub ids: Vec<usize>,
    /// Class targets, parallel to `ids`.
    pub targets: Vec<i64>,
}

/// Per-epoch training diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean loss over sequences.
    pub mean_loss: f32,
}

/// Trains `model` on `examples`; returns per-epoch mean losses.
pub fn train_token_classifier(
    model: &mut TokenClassifier,
    examples: &[TrainExample],
    config: &TrainConfig,
) -> Vec<EpochStats> {
    train_token_classifier_cb(model, examples, config, &mut |_, _| {})
}

/// Like [`train_token_classifier`], invoking `on_epoch(epoch_index, model)`
/// after every completed epoch (for convergence studies like Figure 4).
pub fn train_token_classifier_cb(
    model: &mut TokenClassifier,
    examples: &[TrainExample],
    config: &TrainConfig,
    on_epoch: &mut dyn FnMut(usize, &TokenClassifier),
) -> Vec<EpochStats> {
    assert!(!examples.is_empty(), "no training examples");
    let max_len = model.config().max_len;
    for ex in examples {
        assert_eq!(ex.ids.len(), ex.targets.len(), "ids/targets mismatch");
        assert!(ex.ids.len() <= max_len, "example exceeds max_len");
        assert!(!ex.ids.is_empty(), "empty example");
    }

    // Fail fast, before any forward: symbolic shape check + graph lints.
    let prof_on = prof::enabled();
    timed(prof_on, "train", "graph_check", prof::Cost::zero(), || {
        assert_classifier_valid(model, "fine-tuning");
    });

    let steps_per_epoch = examples.len().div_ceil(config.batch_size.max(1));
    let total_steps = (steps_per_epoch * config.epochs) as u64;
    let schedule = WarmupLinearSchedule {
        base_lr: config.lr,
        warmup_steps: ((total_steps as f32) * config.warmup_frac) as u64,
        total_steps,
    };
    let mut opt = Optimizer::adam(config.lr);
    let mut shuffle_rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut dropout_rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));

    let mut run_span = gs_obs::span("train.finetune");
    run_span.add("examples", examples.len() as u64);
    run_span.add("par_threads", gs_par::max_threads() as u64);
    gs_obs::gauge("train.par_threads", gs_par::max_threads() as f64);
    let mut stats = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut step: u64 = 0;
    // Sequence lengths vary, so a long monotone run of growing tapes is a
    // leak signal, not data noise.
    let mut growth = GrowthMonitor::new(64);
    // One arena scope across every epoch: once warm, each step's tape and
    // kernel buffers are recycled from the pool instead of hitting the
    // allocator (`arena_flatness.rs` pins steady-state training flat).
    gs_tensor::arena::scope(|| {
        for epoch in 0..config.epochs {
            order.shuffle(&mut shuffle_rng);
            let epoch_start = gs_obs::enabled().then(std::time::Instant::now);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size.max(1)) {
                // Pre-draw every sequence's dropout masks on this thread, in
                // batch order, so the RNG stream is identical to serial
                // training regardless of pool size.
                let batch_masks: Vec<Vec<Tensor>> =
                    timed(prof_on, "train", "draw_dropout", prof::Cost::zero(), || {
                        batch
                            .iter()
                            .map(|&i| {
                                model.draw_dropout_masks(examples[i].ids.len(), &mut dropout_rng)
                            })
                            .collect()
                    });
                // Data-parallel shard: each sequence's forward/backward runs on
                // its own tape, possibly on a pool worker, and hands back its
                // loss and gradient pairs.
                let shard_model: &TokenClassifier = model;
                let shards = gs_par::map_collect(batch.len(), |j| {
                    let ex = &examples[batch[j]];
                    let tape = Tape::new();
                    let mut binder = Binder::new(&tape);
                    let logits = shard_model.forward_with_masks(
                        &tape,
                        &mut binder,
                        &ex.ids,
                        &batch_masks[j],
                    );
                    let loss = tape.cross_entropy(logits, &ex.targets);
                    let loss_val = f64::from(tape.value(loss).item());
                    let mut grads = tape.backward(loss);
                    let pairs = binder.take_param_grads(&mut grads);
                    (loss_val, pairs, tape.first_numeric_issue(), tape.len())
                });
                // Fold shards in batch order: loss totals and gradient sums see
                // contributions in exactly the serial order, so every float is
                // bit-identical to single-threaded training.
                let mut batch_loss = 0.0f64;
                for (loss_val, pairs, issue, tape_len) in shards {
                    batch_loss += loss_val;
                    let accum_len: usize = pairs.iter().map(|(_, g)| g.len()).sum();
                    timed(prof_on, "train", "accum_grad", cost::zip(accum_len, 1), || {
                        for (id, g) in &pairs {
                            model.store_mut().accumulate_grad(*id, g);
                        }
                    });
                    if let Some(issue) = issue {
                        gs_obs::counter("train.sanitizer_trips", 1);
                        panic!("numeric sanitizer tripped at step {step} (epoch {epoch}): {issue}");
                    }
                    if let Some(report) = growth.observe(tape_len) {
                        gs_obs::counter("train.tape_growth_alerts", 1);
                        gs_obs::emit(
                            "tape_growth",
                            "finetune",
                            vec![
                                ("step", step.into()),
                                ("epoch", epoch.into()),
                                ("detail", report.to_string().into()),
                            ],
                        );
                    }
                }
                epoch_loss += batch_loss;
                let max_norm = config.clip_norm * batch.len() as f32;
                let grad_norm = model.store_mut().clip_grad_norm(max_norm);
                let lr = schedule.lr_at(step);
                opt.set_lr(lr);
                opt.step(model.store_mut());
                step += 1;
                if gs_obs::enabled() {
                    let clipped = grad_norm > max_norm;
                    gs_obs::counter("train.steps", 1);
                    gs_obs::counter("train.sequences", batch.len() as u64);
                    if clipped {
                        gs_obs::counter("train.clip_events", 1);
                    }
                    gs_obs::emit(
                        "train_step",
                        "finetune",
                        vec![
                            ("step", step.into()),
                            ("epoch", epoch.into()),
                            ("loss", (batch_loss / batch.len() as f64).into()),
                            ("lr", lr.into()),
                            ("grad_norm", grad_norm.into()),
                            ("clipped", clipped.into()),
                            ("sequences", batch.len().into()),
                        ],
                    );
                }
            }
            let mean_loss = (epoch_loss / examples.len() as f64) as f32;
            stats.push(EpochStats { epoch, mean_loss });
            if let Some(start) = epoch_start {
                let seconds = start.elapsed().as_secs_f64();
                gs_obs::observe("train.epoch_seconds", seconds);
                gs_obs::emit(
                    "train_epoch",
                    "finetune",
                    vec![
                        ("epoch", epoch.into()),
                        ("mean_loss", mean_loss.into()),
                        ("seconds", seconds.into()),
                        ("sequences_per_sec", (examples.len() as f64 / seconds.max(1e-9)).into()),
                    ],
                );
            }
            on_epoch(epoch, model);
        }
    });
    drop(run_span);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::config::{ModelFamily, TransformerConfig};

    fn tiny_config() -> TransformerConfig {
        TransformerConfig {
            name: "tiny".into(),
            family: ModelFamily::Roberta,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 12,
            dropout: 0.05,
            subword_budget: 50,
        }
    }

    /// Synthetic task: class of token id i is 1 if the id is even, else 2;
    /// position 0 is an ignored "BOS".
    fn examples(n: usize) -> Vec<TrainExample> {
        (0..n)
            .map(|s| {
                let ids: Vec<usize> = (0..8).map(|i| ((s * 7 + i * 3) % 18) + 2).collect();
                let targets: Vec<i64> = ids
                    .iter()
                    .enumerate()
                    .map(|(pos, &id)| if pos == 0 { -1 } else { (1 + id % 2) as i64 })
                    .collect();
                TrainExample { ids, targets }
            })
            .collect()
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut model = TokenClassifier::new(tiny_config(), 20, 3, 5);
        let config = TrainConfig { epochs: 8, lr: 3e-3, batch_size: 4, ..Default::default() };
        let stats = train_token_classifier(&mut model, &examples(24), &config);
        assert_eq!(stats.len(), 8);
        assert!(
            stats.last().expect("stats").mean_loss < stats[0].mean_loss * 0.5,
            "first {} last {}",
            stats[0].mean_loss,
            stats.last().expect("stats").mean_loss
        );
    }

    #[test]
    fn learns_the_parity_rule() {
        let mut model = TokenClassifier::new(tiny_config(), 20, 3, 5);
        let config = TrainConfig { epochs: 12, lr: 3e-3, batch_size: 4, ..Default::default() };
        train_token_classifier(&mut model, &examples(24), &config);
        // Evaluate on a fresh sequence.
        let ids = vec![2usize, 3, 4, 5, 6, 7];
        let classes = model.predict_classes(&ids);
        let correct = ids.iter().zip(&classes).skip(1).filter(|(&id, &c)| c == 1 + id % 2).count();
        assert!(correct >= 4, "classes {:?}", classes);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut model = TokenClassifier::new(tiny_config(), 20, 3, 5);
            let config = TrainConfig { epochs: 2, lr: 1e-3, batch_size: 4, ..Default::default() };
            let stats = train_token_classifier(&mut model, &examples(12), &config);
            stats.last().expect("stats").mean_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn rejects_empty_training_set() {
        let mut model = TokenClassifier::new(tiny_config(), 20, 3, 5);
        train_token_classifier(&mut model, &[], &TrainConfig::default());
    }
}
