//! Trainable transformer encoders for sequence labeling (paper §3.3).

mod check;
mod config;
mod extractor;
mod model;
mod pretrain;
mod quant;
mod trainer;

pub use check::{assert_classifier_valid, validate_classifier};
pub use config::{ModelFamily, TrainConfig, TransformerConfig};
pub use extractor::{ExtractorOptions, ExtractorView, TransformerExtractor};
pub use model::TokenClassifier;
pub use pretrain::{pretrain_encoder, pretrain_encoder_shared, PretrainConfig, PretrainedEncoder};
pub use quant::{QuantizedExtractor, QuantizedLinear, QuantizedModel};
pub use trainer::{train_token_classifier, train_token_classifier_cb, EpochStats, TrainExample};
