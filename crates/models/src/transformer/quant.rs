//! Int8 weight-quantized inference fast path.
//!
//! Serving replicas are read-only: weights never change after training, so
//! the projection matrices (attention `wq/wk/wv/wo`, FFN `w1/w2`, and the
//! classification head) can be stored as `i8` with one `f32` scale per
//! output channel — a ~4x shrink of the dominant weight memory and a
//! smaller per-dot working set. Activations, attention math, layer norms,
//! biases, and embedding tables stay `f32`, and every dot product
//! accumulates in `f32`, so quantization error enters only through weight
//! rounding (bounded by `scale/2` per weight).
//!
//! The quantized forward is **not** bit-identical to the f32 path — it is
//! tolerance-bounded instead: `crates/models/tests/quant_equivalence.rs`
//! pins exact golden-span agreement and a per-logit max-abs-error budget
//! against the committed fixture.
//!
//! Layout: a `[k, n]` f32 weight is quantized per **output channel** `j`
//! (`scale[j] = max_i |W[i][j]| / 127`) and stored transposed as a `[n, k]`
//! row-major `i8` matrix, so each output's dot product scans one contiguous
//! quantized row against the contiguous activation row.

use super::config::TransformerConfig;
use super::extractor::{decode_predictions, encode_for_inference, TransformerExtractor};
use super::model::{add_bias_rows, layer_norm_rows, pack_sequences, timed, TokenClassifier};
use crate::traits::DetailExtractor;
use gs_core::{decode_details, ExtractedDetails, MultiSpanPolicy};
use gs_obs::prof;
use gs_tensor::{arena, cost, ParamStore, Tensor};
use gs_text::labels::{LabelSet, Tag};
use gs_text::{Normalizer, NormalizerConfig, PreToken, Tokenizer};
use std::collections::BTreeMap;

/// Flop threshold below which a quantized matmul stays serial.
const QMM_PAR_CUTOFF: usize = 64 * 1024;

/// One weight matrix stored as per-output-channel int8.
#[derive(Clone)]
pub struct QuantizedLinear {
    /// Quantized weights, transposed to `[n, k]` row-major:
    /// `q[j*k + p] = round(W[p][j] / scale[j])`.
    q: Vec<i8>,
    /// Per-output-channel dequantization scales, length `n`.
    scale: Vec<f32>,
    /// Input width (rows of the original `[k, n]` weight).
    k: usize,
    /// Output width (columns of the original weight).
    n: usize,
}

impl QuantizedLinear {
    /// Quantizes a `[k, n]` f32 weight matrix.
    pub fn from_weights(w: &Tensor) -> Self {
        let (k, n) = (w.rows(), w.cols());
        let data = w.data();
        let mut scale = vec![0.0f32; n];
        for j in 0..n {
            let mut max_abs = 0.0f32;
            for p in 0..k {
                max_abs = max_abs.max(data[p * n + j].abs());
            }
            // An all-zero column quantizes to zeros under any scale; 1.0
            // keeps the stored scale finite and round-trippable.
            scale[j] = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        }
        let mut q = vec![0i8; n * k];
        for j in 0..n {
            let s = scale[j];
            for p in 0..k {
                q[j * k + p] = (data[p * n + j] / s).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedLinear { q, scale, k, n }
    }

    /// Input width of the original weight.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Output width of the original weight.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// Bytes held by the quantized representation (weights + scales).
    pub fn quantized_bytes(&self) -> usize {
        self.q.len() + self.scale.len() * 4
    }

    /// `x [rows, k] -> [rows, n]`: each output is an f32-accumulated dot of
    /// an activation row against one contiguous int8 weight row, scaled by
    /// that channel's dequantization factor. Fans rows out across the
    /// gs-par pool when the product is large enough to amortize dispatch.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        let rows = x.rows();
        let (k, n) = (self.k, self.n);
        assert_eq!(x.cols(), k, "quantized matmul inner-dim mismatch");
        let mut out = arena::alloc_zeroed(rows * n);
        let run_rows = |row0: usize, block: &mut [f32]| {
            let xdata = x.data();
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                let r = row0 + ri;
                let xr = &xdata[r * k..(r + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    let qr = &self.q[j * k..(j + 1) * k];
                    *o = self.scale[j] * dot_i8(xr, qr);
                }
            }
        };
        if 2 * rows * k * n >= QMM_PAR_CUTOFF && gs_par::max_threads() > 1 && rows > 1 {
            let rows_per_block = rows.div_ceil(gs_par::max_threads() * 4).max(1);
            gs_par::for_each_chunk_mut(&mut out, rows_per_block * n, |ci, block| {
                run_rows(ci * rows_per_block, block);
            });
        } else {
            run_rows(0, &mut out);
        }
        Tensor::from_vec(vec![rows, n], out)
    }
}

/// f32-accumulated dot of an activation row against an int8 weight row.
///
/// Four independent accumulator chains: the quantized path is
/// tolerance-bounded rather than bit-pinned, so summation order is free to
/// trade associativity for instruction-level parallelism.
fn dot_i8(x: &[f32], q: &[i8]) -> f32 {
    debug_assert_eq!(x.len(), q.len());
    let mut acc = [0.0f32; 8];
    let xc = x.chunks_exact(8);
    let qc = q.chunks_exact(8);
    let (xtail, qtail) = (xc.remainder(), qc.remainder());
    // `chunks_exact` gives the optimizer provably in-bounds 8-wide panels,
    // so the convert + multiply + add lowers to vector code.
    for (xs, qs) in xc.zip(qc) {
        for i in 0..8 {
            acc[i] += xs[i] * qs[i] as f32;
        }
    }
    let mut total =
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (xv, qv) in xtail.iter().zip(qtail) {
        total += xv * *qv as f32;
    }
    total
}

/// Whether a parameter name is one of the projection matrices the
/// quantized model stores as int8.
fn is_quantized_param(name: &str) -> bool {
    name == "head.w"
        || (name.starts_with('l')
            && (name.contains(".attn.w") || name.ends_with(".ffn.w1") || name.ends_with(".ffn.w2")))
}

/// A [`TokenClassifier`] with every projection matrix quantized to int8.
///
/// Inference-only: mirrors the packed f32 forward exactly in structure
/// (same attention decomposition, same layer norms, same bias adds) with
/// [`QuantizedLinear::matmul`] replacing each dense projection.
#[derive(Clone)]
pub struct QuantizedModel {
    config: TransformerConfig,
    num_classes: usize,
    /// f32 passthrough parameters: embeddings, layer norms, biases.
    store: ParamStore,
    /// Quantized projections, keyed by the original parameter name.
    quant: BTreeMap<String, QuantizedLinear>,
}

impl From<&TokenClassifier> for QuantizedModel {
    fn from(model: &TokenClassifier) -> Self {
        let src = model.store();
        let mut store = ParamStore::new();
        let mut quant = BTreeMap::new();
        for id in src.ids() {
            let name = src.name(id).to_string();
            let value = src.value(id);
            if is_quantized_param(&name) {
                quant.insert(name, QuantizedLinear::from_weights(value));
            } else {
                store.register(&name, value.clone());
            }
        }
        QuantizedModel {
            config: model.config().clone(),
            num_classes: model.num_classes(),
            store,
            quant,
        }
    }
}

impl QuantizedModel {
    /// The model configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total bytes of quantized weights plus scales (the memory the int8
    /// representation actually pays for the projections).
    pub fn quantized_bytes(&self) -> usize {
        self.quant.values().map(QuantizedLinear::quantized_bytes).sum()
    }

    /// Flattens the model into a [`ParamStore`] that round-trips through
    /// the text checkpoint format (`gs_tensor::serialize`): each quantized
    /// projection `w` becomes `w.q` (a `[n, k]` tensor of exact integers in
    /// `[-127, 127]`, bit-exact as f32) plus `w.scale` (`[n]`); f32
    /// passthrough parameters keep their names.
    pub fn to_store(&self) -> ParamStore {
        let mut out = ParamStore::new();
        for id in self.store.ids() {
            out.register(self.store.name(id), self.store.value(id).clone());
        }
        for (name, lin) in &self.quant {
            let ints: Vec<f32> = lin.q.iter().map(|&v| v as f32).collect();
            out.register(&format!("{name}.q"), Tensor::from_vec(vec![lin.n, lin.k], ints));
            out.register(
                &format!("{name}.scale"),
                Tensor::from_vec(vec![lin.n], lin.scale.clone()),
            );
        }
        out
    }

    /// Rebuilds a quantized model from [`to_store`](Self::to_store) output.
    ///
    /// # Panics
    /// Panics if a `.q` entry lacks its `.scale` twin (or vice versa), or
    /// if a stored quantized value falls outside `[-127, 127]`.
    pub fn from_store(config: TransformerConfig, num_classes: usize, src: ParamStore) -> Self {
        let mut store = ParamStore::new();
        let mut qmats: BTreeMap<String, &Tensor> = BTreeMap::new();
        let mut scales: BTreeMap<String, &Tensor> = BTreeMap::new();
        for id in src.ids() {
            let name = src.name(id);
            let value = src.value(id);
            if let Some(base) = name.strip_suffix(".q") {
                qmats.insert(base.to_string(), value);
            } else if let Some(base) = name.strip_suffix(".scale") {
                scales.insert(base.to_string(), value);
            } else {
                store.register(name, value.clone());
            }
        }
        let mut quant = BTreeMap::new();
        for (name, qt) in qmats {
            let st = scales.remove(&name).unwrap_or_else(|| panic!("missing {name}.scale"));
            let (n, k) = (qt.rows(), qt.cols());
            assert_eq!(st.len(), n, "{name}.scale length");
            let q: Vec<i8> = qt
                .data()
                .iter()
                .map(|&v| {
                    assert!(
                        (-127.0..=127.0).contains(&v) && v == v.trunc(),
                        "{name}.q holds non-int8 value {v}"
                    );
                    v as i8
                })
                .collect();
            quant.insert(name, QuantizedLinear { q, scale: st.data().to_vec(), k, n });
        }
        assert!(scales.is_empty(), "orphan .scale entries: {:?}", scales.keys());
        QuantizedModel { config, num_classes, store, quant }
    }

    fn p(&self, name: &str) -> &Tensor {
        let id = self.store.id(name).unwrap_or_else(|| panic!("missing parameter {name}"));
        self.store.value(id)
    }

    fn qlin(&self, name: &str) -> &QuantizedLinear {
        self.quant.get(name).unwrap_or_else(|| panic!("missing quantized parameter {name}"))
    }

    /// Raw `[n, num_classes]` logits for one sequence — the quantized twin
    /// of [`TokenClassifier::logits`], for the tolerance suite.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn logits(&self, ids: &[usize]) -> Tensor {
        assert!(!ids.is_empty(), "empty input sequence");
        let n = ids.len().min(self.config.max_len);
        let positions: Vec<usize> = (0..n).collect();
        let ranges = vec![Some((0, n))];
        arena::scope(|| self.forward_packed(&ids[..n], &positions, &ranges))
    }

    /// Batched class prediction — the quantized twin of
    /// [`TokenClassifier::predict_classes_batch`], with identical packing,
    /// truncation, and empty-sequence semantics.
    pub fn predict_classes_batch(&self, seqs: &[&[usize]]) -> Vec<Vec<usize>> {
        let packed = pack_sequences(seqs, self.config.max_len);
        if packed.flat_ids.is_empty() {
            return seqs.iter().map(|_| Vec::new()).collect();
        }
        let classes = arena::scope(|| {
            let h = self.forward_packed(&packed.flat_ids, &packed.positions, &packed.ranges);
            timed(prof::enabled(), "head", "argmax", cost::map(h.len(), 1), || h.argmax_rows())
        });
        packed.unpack_classes(seqs, &classes)
    }

    /// The packed quantized forward: structurally identical to the f32
    /// packed forward, with int8 matmuls for every projection.
    fn forward_packed(
        &self,
        flat_ids: &[usize],
        positions: &[usize],
        ranges: &[Option<(usize, usize)>],
    ) -> Tensor {
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let seq_ranges: Vec<(usize, usize)> = ranges.iter().flatten().copied().collect();
        let rows = flat_ids.len();
        let prof = prof::enabled();

        let tok = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
            self.p("emb.tok").gather_rows(flat_ids)
        });
        let pos = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
            self.p("emb.pos").gather_rows(positions)
        });
        let mut h =
            timed(prof, "emb", "add", cost::zip(rows * d, 1), || tok.zip_map(&pos, |x, y| x + y));
        if self.store.id("emb.seg").is_some() {
            let seg = timed(prof, "emb", "embed_gather", cost::gather(rows, d), || {
                self.p("emb.seg").gather_rows(&vec![0; rows])
            });
            h = timed(prof, "emb", "add", cost::zip(rows * d, 1), || h.zip_map(&seg, |x, y| x + y));
        }
        h = timed(prof, "emb", "layer_norm", cost::layer_norm(rows, d), || {
            layer_norm_rows(&h, self.p("emb.ln.g"), self.p("emb.ln.b"))
        });

        for l in 0..self.config.n_layers {
            let attn = format!("l{l}.attn");
            let project = |w: &str, b: &str| {
                let mm = timed(prof, &attn, "qmatmul", cost::matmul(rows, d, d), || {
                    self.qlin(&format!("l{l}.attn.{w}")).matmul(&h)
                });
                timed(prof, &attn, "add_bias", cost::zip(rows * d, 1), || {
                    add_bias_rows(mm, self.p(&format!("l{l}.attn.{b}")))
                })
            };
            let q = project("wq", "bq");
            let k = project("wk", "bk");
            let v = project("wv", "bv");
            let scale = 1.0 / (dh as f32).sqrt();
            let per_seq: Vec<Vec<f32>> = gs_par::map_collect(seq_ranges.len(), |si| {
                let (start, n) = seq_ranges[si];
                let (qs, ks, vs) = (
                    q.slice_rows(start, start + n),
                    k.slice_rows(start, start + n),
                    v.slice_rows(start, start + n),
                );
                let mut heads = Vec::with_capacity(self.config.n_heads);
                for head in 0..self.config.n_heads {
                    let (s, e) = (head * dh, (head + 1) * dh);
                    let (qh, kh, vh) =
                        (qs.slice_cols(s, e), ks.slice_cols(s, e), vs.slice_cols(s, e));
                    let scores = qh.matmul_transb(&kh).map(|x| x * scale);
                    let weights = scores.softmax_last_dim();
                    heads.push(weights.matmul(&vh));
                }
                let head_refs: Vec<&Tensor> = heads.iter().collect();
                Tensor::concat_cols(&head_refs).into_data()
            });
            let concat = timed(prof, &attn, "concat_cols", cost::copy(rows * d), || {
                let mut mixed = arena::alloc_empty(h.len());
                for seq in per_seq {
                    mixed.extend_from_slice(&seq);
                    arena::recycle(seq);
                }
                Tensor::from_vec(vec![rows, d], mixed)
            });
            let mm = timed(prof, &attn, "qmatmul", cost::matmul(rows, d, d), || {
                self.qlin(&format!("l{l}.attn.wo")).matmul(&concat)
            });
            let out = timed(prof, &attn, "add_bias", cost::zip(rows * d, 1), || {
                add_bias_rows(mm, self.p(&format!("l{l}.attn.bo")))
            });
            let sum =
                timed(prof, &attn, "add", cost::zip(rows * d, 1), || h.zip_map(&out, |x, y| x + y));
            h = timed(prof, &attn, "layer_norm", cost::layer_norm(rows, d), || {
                layer_norm_rows(
                    &sum,
                    self.p(&format!("l{l}.ln1.g")),
                    self.p(&format!("l{l}.ln1.b")),
                )
            });

            let ffn = format!("l{l}.ffn");
            let d_ff = self.config.d_ff;
            let mm = timed(prof, &ffn, "qmatmul", cost::matmul(rows, d, d_ff), || {
                self.qlin(&format!("l{l}.ffn.w1")).matmul(&h)
            });
            let pre = timed(prof, &ffn, "add_bias", cost::zip(rows * d_ff, 1), || {
                add_bias_rows(mm, self.p(&format!("l{l}.ffn.b1")))
            });
            let inner = timed(prof, &ffn, "gelu", cost::gelu(rows * d_ff), || pre.gelu_forward());
            let mm = timed(prof, &ffn, "qmatmul", cost::matmul(rows, d_ff, d), || {
                self.qlin(&format!("l{l}.ffn.w2")).matmul(&inner)
            });
            let out = timed(prof, &ffn, "add_bias", cost::zip(rows * d, 1), || {
                add_bias_rows(mm, self.p(&format!("l{l}.ffn.b2")))
            });
            let sum =
                timed(prof, &ffn, "add", cost::zip(rows * d, 1), || h.zip_map(&out, |x, y| x + y));
            h = timed(prof, &ffn, "layer_norm", cost::layer_norm(rows, d), || {
                layer_norm_rows(
                    &sum,
                    self.p(&format!("l{l}.ln2.g")),
                    self.p(&format!("l{l}.ln2.b")),
                )
            });
        }

        let mm = timed(prof, "head", "qmatmul", cost::matmul(rows, d, self.num_classes), || {
            self.qlin("head.w").matmul(&h)
        });
        timed(prof, "head", "add_bias", cost::zip(rows * self.num_classes, 1), || {
            add_bias_rows(mm, self.p("head.b"))
        })
    }
}

/// An int8-serving twin of [`TransformerExtractor`]: same tokenizer, label
/// set, and decoding, with the encoder forward running through
/// [`QuantizedModel`].
pub struct QuantizedExtractor {
    name: String,
    labels: LabelSet,
    tokenizer: Tokenizer,
    case_normalizer: Normalizer,
    model: QuantizedModel,
    multi_span: MultiSpanPolicy,
}

impl From<&TransformerExtractor> for QuantizedExtractor {
    fn from(extractor: &TransformerExtractor) -> Self {
        let (tokenizer, _, multi_span) = extractor.parts();
        QuantizedExtractor {
            name: format!("{}-int8", extractor.name()),
            labels: extractor.labels().clone(),
            tokenizer: tokenizer.clone(),
            case_normalizer: Normalizer::new(NormalizerConfig::default()),
            model: QuantizedModel::from(extractor.model()),
            multi_span,
        }
    }
}

impl QuantizedExtractor {
    /// The label set this extractor predicts.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The quantized encoder.
    pub fn model(&self) -> &QuantizedModel {
        &self.model
    }

    /// Assembles a quantized extractor from independently persisted pieces;
    /// `params` must be in [`QuantizedModel::to_store`] layout. The
    /// quantized counterpart of [`TransformerExtractor::from_parts`].
    pub fn from_parts(
        labels: LabelSet,
        tokenizer: Tokenizer,
        model_config: TransformerConfig,
        num_classes: usize,
        params: ParamStore,
        multi_span: MultiSpanPolicy,
    ) -> Self {
        let model = QuantizedModel::from_store(model_config.clone(), num_classes, params);
        QuantizedExtractor {
            name: format!("{}-int8", model_config.name),
            labels,
            tokenizer,
            case_normalizer: Normalizer::new(NormalizerConfig::default()),
            model,
            multi_span,
        }
    }

    /// Batched tag prediction — the quantized twin of
    /// [`TransformerExtractor::predict_tags_batch`].
    pub fn predict_tags_batch(&self, texts: &[&str]) -> Vec<(String, Vec<PreToken>, Vec<Tag>)> {
        let prof_on = prof::enabled();
        let max_len = self.model.config().max_len;
        let inputs = gs_par::map_collect(texts.len(), |i| {
            timed(prof_on, "tokenize", "encode", prof::Cost::zero(), || {
                encode_for_inference(&self.tokenizer, &self.case_normalizer, max_len, texts[i])
            })
        });
        let seqs: Vec<&[usize]> = inputs.iter().map(|i| i.ids.as_slice()).collect();
        let classes = self.model.predict_classes_batch(&seqs);
        inputs
            .into_iter()
            .zip(classes)
            .map(|(input, classes)| {
                timed(prof_on, "decode", "collapse", prof::Cost::zero(), || {
                    decode_predictions(&self.labels, input, &classes)
                })
            })
            .collect()
    }

    /// Batched extraction — the quantized twin of
    /// [`TransformerExtractor::extract_batch`].
    pub fn extract_batch(&self, texts: &[&str]) -> Vec<ExtractedDetails> {
        self.predict_tags_batch(texts)
            .into_iter()
            .map(|(case_text, tokens, tags)| {
                if tags.is_empty() {
                    ExtractedDetails::new()
                } else {
                    decode_details(&case_text, &tokens, &tags, &self.labels, self.multi_span)
                }
            })
            .collect()
    }
}

impl DetailExtractor for QuantizedExtractor {
    fn name(&self) -> &str {
        &self.name
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        self.extract_batch(&[text]).pop().expect("one result per text")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_half_scale() {
        let w =
            Tensor::matrix(&[vec![0.5, -1.0, 0.0], vec![-0.25, 2.0, 0.0], vec![0.125, 0.5, 0.0]]);
        let lin = QuantizedLinear::from_weights(&w);
        assert_eq!(lin.input_dim(), 3);
        assert_eq!(lin.output_dim(), 3);
        for j in 0..3 {
            for p in 0..3 {
                let original = w.data()[p * 3 + j];
                let restored = lin.q[j * 3 + p] as f32 * lin.scale[j];
                assert!(
                    (original - restored).abs() <= lin.scale[j] * 0.5 + 1e-7,
                    "w[{p}][{j}]: {original} vs {restored}"
                );
            }
        }
        // The all-zero column must stay all-zero with a benign scale.
        assert_eq!(lin.scale[2], 1.0);
        assert!(lin.q[2 * 3..3 * 3].iter().all(|&v| v == 0));
    }

    #[test]
    fn quantized_matmul_tracks_f32() {
        let k = 9;
        let n = 5;
        let rows = 4;
        let wdata: Vec<f32> = (0..k * n).map(|i| ((i * 37 % 19) as f32 - 9.0) / 10.0).collect();
        let xdata: Vec<f32> = (0..rows * k).map(|i| ((i * 23 % 17) as f32 - 8.0) / 8.0).collect();
        let w = Tensor::from_vec(vec![k, n], wdata);
        let x = Tensor::from_vec(vec![rows, k], xdata);
        let exact = x.matmul(&w);
        let quant = QuantizedLinear::from_weights(&w).matmul(&x);
        assert_eq!(quant.shape(), &[rows, n]);
        for (a, b) in exact.data().iter().zip(quant.data()) {
            // Error budget: k weights each off by at most scale/2 against
            // |x| <= 1 activations.
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn dot_i8_handles_remainders() {
        for len in [0, 1, 3, 4, 5, 8, 11] {
            let x: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let q: Vec<i8> = (0..len).map(|i| (i as i8) - 3).collect();
            let expect: f32 = x.iter().zip(&q).map(|(&a, &b)| a * b as f32).sum();
            assert!((dot_i8(&x, &q) - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn store_round_trip_is_exact() {
        let cfg = TransformerConfig {
            name: "tiny".into(),
            family: crate::transformer::ModelFamily::Roberta,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 16,
            dropout: 0.0,
            subword_budget: 50,
        };
        let model = TokenClassifier::new(cfg.clone(), 30, 5, 42);
        let quantized = QuantizedModel::from(&model);
        let restored = QuantizedModel::from_store(cfg, 5, quantized.to_store());
        let ids: Vec<usize> = vec![1, 7, 2, 9, 4];
        assert_eq!(quantized.logits(&ids).data(), restored.logits(&ids).data());
        assert_eq!(quantized.quantized_bytes(), restored.quantized_bytes());
    }
}
