//! Masked-language-model pretraining on unlabeled in-domain text.
//!
//! The paper fine-tunes *pretrained* RoBERTa/BERT checkpoints; pretraining
//! is what gives the transformer its edge over feature-engineered CRFs.
//! Since no pretrained Rust checkpoints exist at our scale, we reproduce the
//! recipe: pretrain the encoder with a BERT-style masked-token objective on
//! a large unlabeled sustainability corpus (no extraction labels are ever
//! used), then swap the LM head for a token-classification head and
//! fine-tune on the weakly labeled objectives.

use super::check::assert_classifier_valid;
use super::config::{ModelFamily, TransformerConfig};
use super::model::TokenClassifier;
use gs_check::GrowthMonitor;
use gs_tensor::{Binder, Optimizer, Tape, Tensor, WarmupLinearSchedule};
use gs_text::{Normalizer, NormalizerConfig, Tokenizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

/// MLM pretraining hyperparameters.
#[derive(Clone, Debug, PartialEq)]
pub struct PretrainConfig {
    /// Pretraining epochs over the unlabeled corpus.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Fraction of tokens masked per sequence.
    pub mask_prob: f64,
    /// Seed for init, masking, and shuffling.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig { epochs: 6, lr: 2e-3, batch_size: 16, mask_prob: 0.15, seed: 0 }
    }
}

/// A pretrained encoder: the tokenizer it was trained with and the model
/// (still carrying its LM head). Wrapped in `Arc` by callers so several
/// fine-tuning runs can share it.
pub struct PretrainedEncoder {
    /// The tokenizer (vocabulary is frozen by pretraining).
    pub tokenizer: Tokenizer,
    /// The pretrained model (head = LM head over the vocabulary).
    pub model: TokenClassifier,
    /// Mean MLM loss per epoch, for convergence reporting.
    pub epoch_losses: Vec<f32>,
}

impl PretrainedEncoder {
    /// A fine-tunable copy: encoder weights kept, LM head replaced by a
    /// fresh `num_classes` head.
    pub fn fine_tune_model(&self, num_classes: usize, seed: u64) -> TokenClassifier {
        let mut model = self.model.clone();
        model.reset_head(num_classes, seed);
        model
    }
}

/// Pretrains an encoder with the masked-token objective on `texts`.
pub fn pretrain_encoder(
    texts: &[&str],
    model_config: &TransformerConfig,
    config: &PretrainConfig,
) -> PretrainedEncoder {
    assert!(!texts.is_empty(), "no pretraining texts");
    model_config.validate();
    let tokenizer = match model_config.family {
        ModelFamily::Roberta => {
            Tokenizer::train_bpe(texts, Normalizer::default(), model_config.subword_budget)
        }
        ModelFamily::Bert => Tokenizer::train_wordpiece(
            texts,
            Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() }),
            model_config.subword_budget,
        ),
    };
    let vocab_size = tokenizer.vocab().len();
    let mask_id = 4usize; // <mask>

    // Encode the corpus once.
    let sequences: Vec<Vec<usize>> = texts
        .iter()
        .filter_map(|t| {
            let enc = tokenizer.encode(t);
            if enc.is_empty() {
                return None;
            }
            let mut ids: Vec<usize> = Vec::with_capacity(enc.ids.len() + 2);
            ids.push(tokenizer.vocab().bos_id() as usize);
            ids.extend(enc.ids.iter().map(|&i| i as usize));
            ids.truncate(model_config.max_len - 1);
            ids.push(tokenizer.vocab().eos_id() as usize);
            Some(ids)
        })
        .collect();
    assert!(!sequences.is_empty(), "pretraining corpus encoded to nothing");

    let mut model = TokenClassifier::new(model_config.clone(), vocab_size, vocab_size, config.seed);
    // Fail fast, before any forward: symbolic shape check + graph lints.
    assert_classifier_valid(&model, "pretraining");
    let mut opt = Optimizer::adam(config.lr);
    let steps_per_epoch = sequences.len().div_ceil(config.batch_size.max(1));
    let total_steps = (steps_per_epoch * config.epochs) as u64;
    let schedule =
        WarmupLinearSchedule { base_lr: config.lr, warmup_steps: total_steps / 10, total_steps };
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(17));
    let mut dropout_rng = StdRng::seed_from_u64(config.seed.wrapping_add(23));

    let mut run_span = gs_obs::span("train.pretrain");
    run_span.add("sequences", sequences.len() as u64);
    run_span.add("par_threads", gs_par::max_threads() as u64);
    let mut order: Vec<usize> = (0..sequences.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut step = 0u64;
    let mut growth = GrowthMonitor::new(64);
    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let epoch_start = gs_obs::enabled().then(std::time::Instant::now);
        let mut epoch_loss = 0.0f64;
        let mut counted = 0usize;
        for batch in order.chunks(config.batch_size.max(1)) {
            // Draw masking decisions and dropout masks serially, in batch
            // order, so both RNG streams match single-threaded runs exactly
            // regardless of pool size.
            let mut shard_inputs: Vec<(Vec<usize>, Vec<i64>, Vec<Tensor>)> =
                Vec::with_capacity(batch.len());
            for &si in batch {
                let ids = &sequences[si];
                // Fresh mask each epoch (standard dynamic masking).
                let mut masked = ids.clone();
                let mut targets = vec![-1i64; ids.len()];
                let mut any = false;
                for pos in 1..ids.len().saturating_sub(1) {
                    if rng.random_bool(config.mask_prob) {
                        targets[pos] = ids[pos] as i64;
                        // 80/10/10: mask / random token / keep.
                        let r: f64 = rng.random();
                        if r < 0.8 {
                            masked[pos] = mask_id;
                        } else if r < 0.9 {
                            masked[pos] = rng.random_range(5..vocab_size.max(6));
                        }
                        any = true;
                    }
                }
                if !any {
                    continue;
                }
                let dropout_masks = model.draw_dropout_masks(masked.len(), &mut dropout_rng);
                shard_inputs.push((masked, targets, dropout_masks));
            }
            let batch_used = shard_inputs.len();
            // Data-parallel shard over the usable sequences; the fold below
            // runs in batch order, keeping gradient sums bit-identical to
            // single-threaded pretraining.
            let shard_model: &TokenClassifier = &model;
            let shards = gs_par::map_collect(shard_inputs.len(), |j| {
                let (masked, targets, dropout_masks) = &shard_inputs[j];
                let tape = Tape::new();
                let mut binder = Binder::new(&tape);
                let logits =
                    shard_model.forward_with_masks(&tape, &mut binder, masked, dropout_masks);
                let loss = tape.cross_entropy(logits, targets);
                let loss_val = f64::from(tape.value(loss).item());
                let mut grads = tape.backward(loss);
                let pairs = binder.take_param_grads(&mut grads);
                (loss_val, pairs, tape.first_numeric_issue(), tape.len())
            });
            let mut batch_loss = 0.0f64;
            for (loss_val, pairs, issue, tape_len) in shards {
                batch_loss += loss_val;
                counted += 1;
                for (id, g) in &pairs {
                    model.store_mut().accumulate_grad(*id, g);
                }
                if let Some(issue) = issue {
                    gs_obs::counter("pretrain.sanitizer_trips", 1);
                    panic!("numeric sanitizer tripped at step {step} (epoch {epoch}): {issue}");
                }
                if let Some(report) = growth.observe(tape_len) {
                    gs_obs::counter("pretrain.tape_growth_alerts", 1);
                    gs_obs::emit(
                        "tape_growth",
                        "pretrain",
                        vec![
                            ("step", step.into()),
                            ("epoch", epoch.into()),
                            ("detail", report.to_string().into()),
                        ],
                    );
                }
            }
            epoch_loss += batch_loss;
            if batch_used > 0 {
                let max_norm = batch_used as f32;
                let grad_norm = model.store_mut().clip_grad_norm(max_norm);
                let lr = schedule.lr_at(step);
                opt.set_lr(lr);
                opt.step(model.store_mut());
                if gs_obs::enabled() {
                    let clipped = grad_norm > max_norm;
                    gs_obs::counter("pretrain.steps", 1);
                    gs_obs::counter("pretrain.sequences", batch_used as u64);
                    if clipped {
                        gs_obs::counter("pretrain.clip_events", 1);
                    }
                    gs_obs::emit(
                        "train_step",
                        "pretrain",
                        vec![
                            ("step", (step + 1).into()),
                            ("epoch", epoch.into()),
                            ("loss", (batch_loss / batch_used as f64).into()),
                            ("lr", lr.into()),
                            ("grad_norm", grad_norm.into()),
                            ("clipped", clipped.into()),
                            ("sequences", batch_used.into()),
                        ],
                    );
                }
            }
            step += 1;
        }
        let mean_loss = (epoch_loss / counted.max(1) as f64) as f32;
        epoch_losses.push(mean_loss);
        if let Some(start) = epoch_start {
            let seconds = start.elapsed().as_secs_f64();
            gs_obs::observe("pretrain.epoch_seconds", seconds);
            gs_obs::emit(
                "train_epoch",
                "pretrain",
                vec![
                    ("epoch", epoch.into()),
                    ("mean_loss", mean_loss.into()),
                    ("seconds", seconds.into()),
                ],
            );
        }
    }
    drop(run_span);

    PretrainedEncoder { tokenizer, model, epoch_losses }
}

/// Convenience: pretrain and wrap in an `Arc` for sharing across runs.
pub fn pretrain_encoder_shared(
    texts: &[&str],
    model_config: &TransformerConfig,
    config: &PretrainConfig,
) -> Arc<PretrainedEncoder> {
    Arc::new(pretrain_encoder(texts, model_config, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TransformerConfig {
        TransformerConfig {
            name: "tiny".into(),
            family: ModelFamily::Roberta,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
            dropout: 0.05,
            subword_budget: 120,
        }
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "Reduce energy consumption by 20% by 2025.",
            "Reach net-zero carbon emissions by 2040.",
            "Cut waste to landfill by half by 2030.",
            "Restore 100% of our global water use.",
            "Lower fleet fuel consumption by 15%.",
            "Achieve zero waste across all operations.",
            "Install renewable electricity at all sites.",
            "Double recyclable packaging by 2028.",
        ]
    }

    #[test]
    fn mlm_loss_decreases() {
        let pc = PretrainConfig { epochs: 10, lr: 3e-3, batch_size: 4, ..Default::default() };
        let pe = pretrain_encoder(&corpus(), &tiny_config(), &pc);
        let first = pe.epoch_losses[0];
        let last = *pe.epoch_losses.last().expect("losses");
        assert!(last < first, "MLM loss {first} -> {last}");
    }

    #[test]
    fn fine_tune_model_has_new_head() {
        let pc = PretrainConfig { epochs: 1, ..Default::default() };
        let pe = pretrain_encoder(&corpus(), &tiny_config(), &pc);
        let ft = pe.fine_tune_model(11, 3);
        assert_eq!(ft.num_classes(), 11);
        // Encoder weights are inherited: embeddings identical.
        let emb_pre = pe.model.store().id("emb.tok").expect("emb");
        let emb_ft = ft.store().id("emb.tok").expect("emb");
        assert_eq!(pe.model.store().value(emb_pre), ft.store().value(emb_ft));
        // Predictions are well-formed.
        let classes = ft.predict_classes(&[1, 2, 3]);
        assert!(classes.iter().all(|&c| c < 11));
    }

    #[test]
    fn pretraining_is_deterministic() {
        let pc = PretrainConfig { epochs: 2, ..Default::default() };
        let a = pretrain_encoder(&corpus(), &tiny_config(), &pc);
        let b = pretrain_encoder(&corpus(), &tiny_config(), &pc);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    #[should_panic(expected = "no pretraining texts")]
    fn empty_corpus_rejected() {
        let _ = pretrain_encoder(&[], &tiny_config(), &PretrainConfig::default());
    }
}
