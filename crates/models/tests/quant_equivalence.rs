//! Accuracy-tolerance suite for the int8 quantized serving path, pinned
//! against the committed golden fixture (`tests/golden/` at the repo root):
//!
//! 1. **Spans are exact**: the quantized extractor must reproduce every
//!    golden span byte-for-byte (span F1 == 1.0 against the f32 path).
//! 2. **Logits are close**: per-logit max-abs error against the f32 packed
//!    forward stays under a fixed budget on every fixture text.
//! 3. **Round-trip**: the quantized model survives the plain-text
//!    checkpoint format bit-exactly (`.q` integer tensors and `.scale`
//!    rows through `save_params_text` / `load_params_text`).

use gs_core::MultiSpanPolicy;
use gs_models::transformer::{
    ModelFamily, QuantizedExtractor, QuantizedModel, TransformerConfig, TransformerExtractor,
};
use gs_text::labels::LabelSet;
use gs_text::{Normalizer, Tokenizer};
use std::path::{Path, PathBuf};

/// Per-logit max-abs-error budget for the golden model. Weight rounding
/// injects at most `scale/2` per weight; two encoder layers of the golden
/// architecture keep the compounded logit error well under this.
const LOGIT_TOLERANCE: f32 = 0.15;

/// Mirrors `golden_config()` in `tests/golden_extraction.rs`.
fn golden_config() -> TransformerConfig {
    TransformerConfig {
        name: "golden-roberta".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_len: 48,
        dropout: 0.05,
        subword_budget: 300,
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn load_golden_extractor() -> TransformerExtractor {
    let dir = fixture_dir();
    let corpus = std::fs::read_to_string(dir.join("corpus.txt")).expect("read corpus.txt");
    let texts: Vec<&str> = corpus.lines().collect();
    assert!(!texts.is_empty(), "empty golden corpus");
    let config = golden_config();
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let params = gs_tensor::serialize::load_params_text_file(&dir.join("params.txt"))
        .expect("read params.txt");
    let labels = LabelSet::sustainability_goals();
    let num_classes = labels.num_classes();
    TransformerExtractor::from_parts(
        labels,
        tokenizer,
        config,
        num_classes,
        params,
        MultiSpanPolicy::First,
    )
}

/// `>>> text` cases with their `field<TAB>value` spans.
fn golden_cases() -> Vec<(String, Vec<(String, String)>)> {
    let raw =
        std::fs::read_to_string(fixture_dir().join("expected.txt")).expect("read expected.txt");
    let mut cases: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for line in raw.lines() {
        if let Some(text) = line.strip_prefix(">>> ") {
            cases.push((text.to_string(), Vec::new()));
        } else if !line.trim().is_empty() {
            let (kind, value) = line.split_once('\t').expect("field lines are kind<TAB>value");
            cases.last_mut().expect("field before case").1.push((kind.into(), value.into()));
        }
    }
    assert!(!cases.is_empty(), "empty expected.txt");
    cases
}

#[test]
fn quantized_extractor_reproduces_every_golden_span() {
    let f32_ex = load_golden_extractor();
    let quant_ex = QuantizedExtractor::from(&f32_ex);
    let cases = golden_cases();
    let texts: Vec<&str> = cases.iter().map(|(t, _)| t.as_str()).collect();
    let batched = quant_ex.extract_batch(&texts);
    let mut spans = 0usize;
    for (details, (text, want)) in batched.into_iter().zip(&cases) {
        let got: Vec<(String, String)> =
            details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        assert_eq!(&got, want, "quantized spans drifted for {text:?}");
        spans += want.len();
    }
    // Exact agreement on every span is span F1 == 1.0 by construction;
    // make sure the fixture actually exercised some.
    assert!(spans > 0, "golden fixture contains no spans");
}

#[test]
fn quantized_logits_stay_within_tolerance() {
    let f32_ex = load_golden_extractor();
    let quantized = QuantizedModel::from(f32_ex.model());
    let cases = golden_cases();
    let mut worst = 0.0f32;
    for (text, _) in &cases {
        let (_, _, tags) = f32_ex.predict_tags(text);
        assert!(!tags.is_empty(), "fixture text produced no tags: {text:?}");
        // Compare on the exact id sequence the extractor would run.
        let ids = golden_ids(&f32_ex, text);
        let exact = f32_ex.model().logits(&ids);
        let approx = quantized.logits(&ids);
        assert_eq!(exact.shape(), approx.shape());
        for (a, b) in exact.data().iter().zip(approx.data()) {
            worst = worst.max((a - b).abs());
        }
    }
    assert!(
        worst < LOGIT_TOLERANCE,
        "per-logit max-abs error {worst} exceeds budget {LOGIT_TOLERANCE}"
    );
    // The budget is meaningful only if quantization moves the logits at
    // all; exact zeros would mean the int8 path silently ran in f32.
    assert!(worst > 0.0, "quantized logits are bitwise equal to f32 — suspicious");
}

/// Rebuilds the `<s> ids </s>` sequence `predict_tags` feeds the encoder.
fn golden_ids(ex: &TransformerExtractor, text: &str) -> Vec<usize> {
    let dir = fixture_dir();
    let corpus = std::fs::read_to_string(dir.join("corpus.txt")).expect("read corpus.txt");
    let texts: Vec<&str> = corpus.lines().collect();
    let config = golden_config();
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let enc = tokenizer.encode(text);
    let vocab = tokenizer.vocab();
    let mut ids: Vec<usize> = Vec::with_capacity(enc.ids.len() + 2);
    ids.push(vocab.bos_id() as usize);
    ids.extend(enc.ids.iter().map(|&i| i as usize));
    ids.truncate(ex.model().config().max_len - 1);
    ids.push(vocab.eos_id() as usize);
    ids
}

#[test]
fn quantized_model_round_trips_through_text_checkpoint() {
    let f32_ex = load_golden_extractor();
    let quantized = QuantizedModel::from(f32_ex.model());

    let mut checkpoint: Vec<u8> = Vec::new();
    gs_tensor::serialize::save_params_text(&quantized.to_store(), &mut checkpoint)
        .expect("write checkpoint");
    let restored_store =
        gs_tensor::serialize::load_params_text(checkpoint.as_slice()).expect("parse checkpoint");
    let restored =
        QuantizedModel::from_store(golden_config(), f32_ex.model().num_classes(), restored_store);

    assert_eq!(quantized.quantized_bytes(), restored.quantized_bytes());
    let cases = golden_cases();
    for (text, _) in cases.iter().take(4) {
        let ids = golden_ids(&f32_ex, text);
        let before = quantized.logits(&ids);
        let after = restored.logits(&ids);
        // Text checkpoints store exact f32 bits, so the round-tripped model
        // must be bit-identical, not merely close.
        let before_bits: Vec<u32> = before.data().iter().map(|v| v.to_bits()).collect();
        let after_bits: Vec<u32> = after.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before_bits, after_bits, "round-trip drifted for {text:?}");
    }
}
