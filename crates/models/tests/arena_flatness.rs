//! The buffer arena must make steady-state inference allocation-free: after
//! a warm-up round inside an arena scope, repeated packed forwards recycle
//! every kernel buffer, so the arena's fresh-allocation counter stays
//! **flat** across 50 reuse rounds. A `GrowthMonitor` (gs-check's
//! leak detector) watches the cumulative counter; any upward drift means a
//! kernel started allocating outside the pool.
//!
//! The soaks run on the **serial schedule** (`with_threads(1)`), where
//! zero-alloc steady state is an exact contract. Under a multi-thread pool
//! the same buffers recycle, but two workers can race a bucket (one
//! requests while the other still holds), so an occasional fresh alloc —
//! bounded by the worker count — is legitimate there, and "flat" would be
//! timing-dependent rather than meaningful.

use gs_check::GrowthMonitor;
use gs_models::transformer::{ModelFamily, QuantizedModel, TokenClassifier, TransformerConfig};
use gs_tensor::arena;
use std::sync::Mutex;

/// The arena's counters are process-global, so the soak tests must not
/// overlap (cargo runs tests in one binary concurrently by default).
static SOAK: Mutex<()> = Mutex::new(());

fn bench_model() -> TokenClassifier {
    let config = TransformerConfig {
        name: "arena-bench".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_len: 48,
        dropout: 0.0,
        subword_budget: 100,
    };
    TokenClassifier::new(config, 120, 9, 17)
}

fn batch() -> Vec<Vec<usize>> {
    (0..6).map(|s| (0..24).map(|i| (s * 13 + i * 7) % 120).collect()).collect()
}

const WARMUP: usize = 3;
const ROUNDS: usize = 50;

/// Runs `forward` ROUNDS times after WARMUP rounds, on the serial
/// schedule, and asserts the arena's cumulative fresh-allocation count
/// never moves once warm.
fn assert_flat(label: &str, mut forward: impl FnMut()) {
    gs_par::with_threads(1, || {
        arena::clear();
        arena::reset_stats();
        for _ in 0..WARMUP {
            forward();
        }
        let warm = arena::stats();
        assert!(warm.recycled_allocs > 0, "{label}: arena never recycled during warm-up");

        let mut monitor = GrowthMonitor::new(2);
        for round in 0..ROUNDS {
            forward();
            let fresh = arena::stats().fresh_allocs as usize;
            if let Some(report) = monitor.observe(fresh) {
                panic!("{label}: arena allocations grew at round {round}: {report}");
            }
        }
        assert!(monitor.is_flat(), "{label}: fresh allocations moved across {ROUNDS} reuse rounds");
        assert_eq!(
            warm.fresh_allocs,
            arena::stats().fresh_allocs,
            "{label}: steady state allocated beyond warm-up"
        );
    });
}

#[test]
fn packed_forward_allocates_nothing_in_steady_state() {
    let _guard = SOAK.lock().unwrap_or_else(|e| e.into_inner());
    let model = bench_model();
    let seqs = batch();
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let baseline = model.predict_classes_batch(&refs);
    // Single persistent scope around the soak, mirroring the serve worker
    // loop (one scope alive for the process, one forward per request).
    arena::scope(|| {
        assert_flat("f32 packed forward", || {
            assert_eq!(model.predict_classes_batch(&refs), baseline);
        });
    });
    arena::clear();
}

#[test]
fn quantized_forward_allocates_nothing_in_steady_state() {
    let _guard = SOAK.lock().unwrap_or_else(|e| e.into_inner());
    let model = bench_model();
    let quantized = QuantizedModel::from(&model);
    let seqs = batch();
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let baseline = quantized.predict_classes_batch(&refs);
    arena::scope(|| {
        assert_flat("int8 packed forward", || {
            assert_eq!(quantized.predict_classes_batch(&refs), baseline);
        });
    });
    arena::clear();
}

#[test]
fn training_step_reuses_tape_buffers() {
    let _guard = SOAK.lock().unwrap_or_else(|e| e.into_inner());
    use gs_tensor::{Binder, Optimizer, Tape};

    let mut model = bench_model();
    let ids: Vec<usize> = (0..24).map(|i| (i * 11) % 120).collect();
    let targets: Vec<i64> = ids.iter().map(|&i| (i % 9) as i64).collect();
    let mut opt = Optimizer::adam(1e-3);
    let mut step = || {
        let tape = Tape::new();
        let mut binder = Binder::new(&tape);
        let logits = model.forward(&tape, &mut binder, &ids, None);
        let loss = tape.cross_entropy(logits, &targets);
        let mut grads = tape.backward(loss);
        binder.accumulate(&mut grads, model.store_mut());
        opt.step(model.store_mut());
    };
    arena::scope(|| {
        assert_flat("train step", &mut step);
    });
    arena::clear();
}
