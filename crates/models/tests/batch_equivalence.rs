//! Property: batched inference is a pure throughput optimization. For any
//! list of input texts — clean objectives, noise, empty strings, arbitrary
//! unicode — `predict_tags_batch` must agree exactly with per-text
//! `predict_tags`, and `extract_batch` with per-text `extract`.

use gs_core::Objective;
use gs_models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use gs_models::DetailExtractor;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One tiny trained extractor for every property case (training once keeps
/// the property affordable; the property itself only runs inference).
fn extractor() -> &'static TransformerExtractor {
    static EXTRACTOR: OnceLock<TransformerExtractor> = OnceLock::new();
    EXTRACTOR.get_or_init(|| {
        let dataset = gs_data::sustaingoals::generate(48, 7);
        let refs: Vec<&Objective> = dataset.objectives.iter().collect();
        let options = ExtractorOptions {
            model: TransformerConfig {
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                max_len: 48,
                subword_budget: 250,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs: 6, lr: 3e-3, batch_size: 8, ..Default::default() },
            ..Default::default()
        };
        TransformerExtractor::train(&refs, &dataset.labels, options)
    })
}

/// Mixes in-distribution objectives with degenerate and adversarial inputs.
fn any_text() -> impl Strategy<Value = String> {
    let corpus: Vec<String> =
        gs_data::sustaingoals::generate(48, 7).texts().into_iter().map(str::to_string).collect();
    prop_oneof![
        4 => proptest::sample::select(corpus),
        2 => proptest::string::string_regex("[a-zA-Z0-9 .,%-]{0,80}").expect("regex"),
        1 => Just(String::new()),
        1 => Just("   \t  ".to_string()),
        1 => proptest::string::string_regex("\\PC{0,24}").expect("regex"),
    ]
}

proptest! {
    // Inference per case is cheap but the model trains on first use; keep
    // the case count modest so the whole property stays in test budget.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_inference_matches_per_text_inference(texts in proptest::collection::vec(any_text(), 0..6)) {
        let extractor = extractor();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();

        let batched_tags = extractor.predict_tags_batch(&refs);
        prop_assert_eq!(batched_tags.len(), refs.len());
        for (text, batched) in refs.iter().zip(&batched_tags) {
            let single = extractor.predict_tags(text);
            prop_assert_eq!(batched, &single, "predict_tags diverged for {:?}", text);
        }

        let batched_details = extractor.extract_batch(&refs);
        prop_assert_eq!(batched_details.len(), refs.len());
        for (text, batched) in refs.iter().zip(&batched_details) {
            let single = extractor.extract(text);
            prop_assert_eq!(
                format!("{batched:?}"),
                format!("{single:?}"),
                "extract diverged for {:?}",
                text
            );
        }
    }
}
