//! Data-parallel training must be bit-identical to serial training: the
//! dropout-mask pre-draw keeps the RNG stream unchanged and the in-order
//! gradient fold keeps every float addition in the serial order, so a
//! fixed-seed run produces the same loss sequence and the same final
//! parameters at every pool size.

use gs_models::transformer::{
    pretrain_encoder, train_token_classifier, ModelFamily, PretrainConfig, TokenClassifier,
    TrainConfig, TransformerConfig,
};

fn tiny_config() -> TransformerConfig {
    TransformerConfig {
        name: "tiny".into(),
        family: ModelFamily::Roberta,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_len: 16,
        dropout: 0.1,
        subword_budget: 80,
    }
}

fn examples(n: usize) -> Vec<gs_models::transformer::TrainExample> {
    (0..n)
        .map(|s| {
            let ids: Vec<usize> = (0..10).map(|i| ((s * 5 + i * 3) % 22) + 2).collect();
            let targets: Vec<i64> = ids
                .iter()
                .enumerate()
                .map(|(pos, &id)| if pos == 0 { -1 } else { (1 + id % 2) as i64 })
                .collect();
            gs_models::transformer::TrainExample { ids, targets }
        })
        .collect()
}

/// Runs a fixed-seed 3-epoch fine-tune and returns (loss sequence, every
/// parameter's bits in registration order).
fn train_run() -> (Vec<f32>, Vec<Vec<u32>>) {
    let mut model = TokenClassifier::new(tiny_config(), 30, 3, 11);
    let config = TrainConfig { epochs: 3, lr: 2e-3, batch_size: 4, seed: 7, ..Default::default() };
    let stats = train_token_classifier(&mut model, &examples(12), &config);
    let losses = stats.iter().map(|s| s.mean_loss).collect();
    let store = model.store();
    let params = store
        .ids()
        .map(|id| store.value(id).data().iter().map(|v| v.to_bits()).collect())
        .collect();
    (losses, params)
}

#[test]
fn training_is_bit_identical_across_pool_sizes() {
    let baseline = gs_par::with_threads(1, train_run);
    for threads in [2usize, 4] {
        let run = gs_par::with_threads(threads, train_run);
        assert_eq!(baseline.0, run.0, "loss sequence diverged at {threads} threads");
        assert_eq!(baseline.1, run.1, "final parameters diverged at {threads} threads");
    }
}

#[test]
fn pretraining_is_bit_identical_across_pool_sizes() {
    let corpus = [
        "Reduce energy consumption by 20% by 2025.",
        "Reach net-zero carbon emissions by 2040.",
        "Cut waste to landfill by half by 2030.",
        "Restore 100% of our global water use.",
        "Lower fleet fuel consumption by 15%.",
        "Double recyclable packaging by 2028.",
    ];
    let run = || {
        let pc = PretrainConfig { epochs: 2, lr: 1e-3, batch_size: 3, ..Default::default() };
        let pe = pretrain_encoder(&corpus, &tiny_config(), &pc);
        let store = pe.model.store();
        let params: Vec<Vec<u32>> = store
            .ids()
            .map(|id| store.value(id).data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (pe.epoch_losses.clone(), params)
    };
    let baseline = gs_par::with_threads(1, run);
    for threads in [2usize, 4] {
        let parallel = gs_par::with_threads(threads, run);
        assert_eq!(baseline.0, parallel.0, "MLM loss sequence diverged at {threads} threads");
        assert_eq!(baseline.1, parallel.1, "pretrained parameters diverged at {threads} threads");
    }
}

#[test]
fn batched_inference_is_bit_identical_across_pool_sizes() {
    let model = TokenClassifier::new(tiny_config(), 30, 5, 3);
    let seqs: Vec<Vec<usize>> =
        vec![vec![1, 5, 9, 2], vec![3], vec![7, 7, 7, 7, 7, 7], (0..14).map(|i| i % 30).collect()];
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let baseline = gs_par::with_threads(1, || model.predict_classes_batch(&refs));
    for threads in [2usize, 4] {
        let parallel = gs_par::with_threads(threads, || model.predict_classes_batch(&refs));
        assert_eq!(baseline, parallel, "batched predictions diverged at {threads} threads");
    }
}
