//! Tape-growth detection across training steps.
//!
//! A training loop that accidentally threads one tape through multiple steps
//! (or caches `Var`s across steps) shows up as a node count that keeps
//! climbing. With a fresh tape per step the count is a function of the batch
//! shape and stays flat, or fluctuates with sequence length without trending
//! up. [`GrowthMonitor`] watches the per-step node count and trips after
//! `patience` consecutive strict increases.

use std::fmt;

/// Sliding detector for monotone tape growth.
#[derive(Debug, Clone)]
pub struct GrowthMonitor {
    patience: usize,
    run: usize,
    run_start: usize,
    last: Option<usize>,
    steps: usize,
    first: Option<usize>,
    peak: usize,
    flat: bool,
}

/// Evidence of a leak: the node count rose on every one of `steps`
/// consecutive observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthReport {
    /// Consecutive strictly-increasing observations.
    pub steps: usize,
    /// Node count at the start of the run.
    pub from_nodes: usize,
    /// Node count at the latest observation.
    pub to_nodes: usize,
    /// Index (0-based) of the observation that tripped the monitor.
    pub at_step: usize,
}

impl fmt::Display for GrowthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tape grew for {} consecutive steps ({} -> {} nodes, step {}); \
             a tape or Vars are likely retained across steps",
            self.steps, self.from_nodes, self.to_nodes, self.at_step
        )
    }
}

impl GrowthMonitor {
    /// Creates a monitor that trips after `patience` consecutive strict
    /// increases (clamped to at least 1).
    pub fn new(patience: usize) -> GrowthMonitor {
        GrowthMonitor {
            patience: patience.max(1),
            run: 0,
            run_start: 0,
            last: None,
            steps: 0,
            first: None,
            peak: 0,
            flat: true,
        }
    }

    /// Number of observations recorded so far.
    pub fn observations(&self) -> usize {
        self.steps
    }

    /// Highest node count observed so far (0 before any observation).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether every observation so far equals the first one. Workloads
    /// that replay an identical step — such as pool-reuse soak tests
    /// re-running one forward/backward under a persistent thread pool —
    /// must stay flat; any deviation means state leaked across steps.
    pub fn is_flat(&self) -> bool {
        self.flat
    }

    /// Records the node count of the tape used for one training step.
    /// Returns a report when the count has strictly increased `patience`
    /// times in a row.
    pub fn observe(&mut self, nodes: usize) -> Option<GrowthReport> {
        let step = self.steps;
        self.steps += 1;
        self.peak = self.peak.max(nodes);
        match self.first {
            None => self.first = Some(nodes),
            Some(first) if nodes != first => self.flat = false,
            Some(_) => {}
        }
        match self.last {
            Some(prev) if nodes > prev => {
                if self.run == 0 {
                    self.run_start = prev;
                }
                self.run += 1;
            }
            _ => self.run = 0,
        }
        self.last = Some(nodes);
        if self.run >= self.patience {
            let report = GrowthReport {
                steps: self.run,
                from_nodes: self.run_start,
                to_nodes: nodes,
                at_step: step,
            };
            self.run = 0;
            Some(report)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_counts_never_trip() {
        let mut m = GrowthMonitor::new(3);
        for _ in 0..100 {
            assert_eq!(m.observe(500), None);
        }
    }

    #[test]
    fn fluctuating_counts_never_trip() {
        let mut m = GrowthMonitor::new(3);
        for step in 0..100 {
            let nodes = 500 + (step % 3) * 40;
            assert_eq!(m.observe(nodes), None, "step {step}");
        }
    }

    #[test]
    fn monotone_growth_trips_after_patience() {
        let mut m = GrowthMonitor::new(3);
        assert_eq!(m.observe(100), None);
        assert_eq!(m.observe(110), None);
        assert_eq!(m.observe(120), None);
        let report = m.observe(130).expect("tripped");
        assert_eq!(report.steps, 3);
        assert_eq!(report.from_nodes, 100);
        assert_eq!(report.to_nodes, 130);
        assert_eq!(report.at_step, 3);
        assert!(report.to_string().contains("3 consecutive steps"));
    }

    #[test]
    fn flatness_and_peak_track_observations() {
        let mut m = GrowthMonitor::new(3);
        assert!(m.is_flat());
        assert_eq!(m.peak(), 0);
        m.observe(500);
        m.observe(500);
        assert!(m.is_flat());
        assert_eq!(m.peak(), 500);
        assert_eq!(m.observations(), 2);
        m.observe(510);
        assert!(!m.is_flat());
        assert_eq!(m.peak(), 510);
        m.observe(500);
        assert!(!m.is_flat(), "flatness does not recover after a deviation");
    }

    #[test]
    fn run_resets_after_a_drop() {
        let mut m = GrowthMonitor::new(2);
        assert_eq!(m.observe(100), None);
        assert_eq!(m.observe(110), None);
        assert_eq!(m.observe(90), None); // reset
        assert_eq!(m.observe(95), None);
        assert!(m.observe(99).is_some());
    }
}
