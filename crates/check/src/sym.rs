//! A symbolic tape: records the same program an eager [`Tape`] would, but
//! computes only shapes, never values.
//!
//! [`SymTape`] implements [`TapeOps`], so any model code generic over the
//! trait (`TokenClassifier::forward`, loss construction, …) can be traced
//! without running a single matmul. Shape-rule violations do not panic as
//! they would on the eager tape; they are collected as [`Finding`]s carrying
//! the exact same message the runtime panic would have used, plus the node
//! index, op name, scope path, and parameter label.
//!
//! [`Tape`]: gs_tensor::Tape

use std::cell::RefCell;

use gs_tensor::{infer_shape, Graph, GraphNode, OpKind, TapeOps, Tensor, Var};

use crate::analyze::{Finding, FindingKind};

/// Shape-only recorder implementing [`TapeOps`].
///
/// Interior mutability mirrors the eager tape so the two are drop-in
/// interchangeable behind `&T where T: TapeOps`.
#[derive(Default)]
pub struct SymTape {
    graph: RefCell<Graph>,
    scope_stack: RefCell<Vec<u32>>,
    findings: RefCell<Vec<Finding>>,
}

impl SymTape {
    /// Creates an empty symbolic tape.
    pub fn new() -> SymTape {
        SymTape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.graph.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.graph.borrow().is_empty()
    }

    /// The inferred shape of a recorded node (`None` if a rule failed on it
    /// or upstream of it).
    pub fn shape(&self, v: Var) -> Option<Vec<usize>> {
        self.graph.borrow().nodes[v.index()].shape.clone()
    }

    /// Findings collected so far (shape violations and non-finite leaves).
    pub fn findings(&self) -> Vec<Finding> {
        self.findings.borrow().clone()
    }

    /// Consumes the tape, returning the recorded graph and its findings.
    pub fn finish(self) -> (Graph, Vec<Finding>) {
        (self.graph.into_inner(), self.findings.into_inner())
    }

    fn current_scope(&self) -> u32 {
        self.scope_stack.borrow().last().copied().unwrap_or(0)
    }

    fn record_leaf(&self, value: &Tensor, requires_grad: bool, label: Option<&str>) -> Var {
        let scope = self.current_scope();
        let mut graph = self.graph.borrow_mut();
        let idx = graph.nodes.len();
        graph.nodes.push(GraphNode {
            kind: OpKind::Leaf { requires_grad },
            shape: Some(value.shape().to_vec()),
            scope,
            label: label.map(str::to_string),
        });
        if let Some(bad) = value.data().iter().find(|v| !v.is_finite()) {
            let what = if bad.is_nan() { "NaN" } else { "Inf" };
            self.findings.borrow_mut().push(Finding {
                kind: FindingKind::NonFiniteParam,
                node: idx,
                op: "leaf",
                scope: graph.scope_name(scope).to_string(),
                label: label.map(str::to_string),
                message: format!("leaf value contains {what}"),
            });
        }
        Var::from_index(idx)
    }

    fn record(&self, kind: OpKind) -> Var {
        let scope = self.current_scope();
        let mut graph = self.graph.borrow_mut();
        let idx = graph.nodes.len();
        let shape = match infer_shape(&kind, |i| graph.nodes[i].shape.clone()) {
            Ok(shape) => shape,
            Err(e) => {
                self.findings.borrow_mut().push(Finding {
                    kind: FindingKind::ShapeViolation,
                    node: idx,
                    op: kind.name(),
                    scope: graph.scope_name(scope).to_string(),
                    label: None,
                    message: e.to_string(),
                });
                None
            }
        };
        graph.nodes.push(GraphNode { kind, shape, scope, label: None });
        Var::from_index(idx)
    }
}

impl TapeOps for SymTape {
    fn leaf(&self, value: Tensor) -> Var {
        self.record_leaf(&value, true, None)
    }
    fn constant(&self, value: Tensor) -> Var {
        self.record_leaf(&value, false, None)
    }
    fn leaf_labeled(&self, value: &Tensor, label: &str) -> Var {
        self.record_leaf(value, true, Some(label))
    }
    fn constant_labeled(&self, value: &Tensor, label: &str) -> Var {
        self.record_leaf(value, false, Some(label))
    }
    fn add(&self, a: Var, b: Var) -> Var {
        self.record(OpKind::Add { a: a.index(), b: b.index() })
    }
    fn add_bias(&self, x: Var, bias: Var) -> Var {
        self.record(OpKind::AddBias { x: x.index(), bias: bias.index() })
    }
    fn sub(&self, a: Var, b: Var) -> Var {
        self.record(OpKind::Sub { a: a.index(), b: b.index() })
    }
    fn mul(&self, a: Var, b: Var) -> Var {
        self.record(OpKind::Mul { a: a.index(), b: b.index() })
    }
    fn scale(&self, a: Var, c: f32) -> Var {
        self.record(OpKind::Scale { x: a.index(), factor: c })
    }
    fn matmul(&self, a: Var, b: Var) -> Var {
        self.record(OpKind::MatMul { a: a.index(), b: b.index() })
    }
    fn matmul_transb(&self, a: Var, b: Var) -> Var {
        self.record(OpKind::MatMulTransB { a: a.index(), b: b.index() })
    }
    fn relu(&self, a: Var) -> Var {
        self.record(OpKind::Relu { x: a.index() })
    }
    fn gelu(&self, a: Var) -> Var {
        self.record(OpKind::Gelu { x: a.index() })
    }
    fn tanh(&self, a: Var) -> Var {
        self.record(OpKind::Tanh { x: a.index() })
    }
    fn softmax_last_dim(&self, a: Var) -> Var {
        self.record(OpKind::SoftmaxLastDim { x: a.index() })
    }
    fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        self.record(OpKind::LayerNorm { x: x.index(), gamma: gamma.index(), beta: beta.index() })
    }
    fn embed_gather(&self, table: Var, ids: &[usize]) -> Var {
        self.record(OpKind::EmbedGather {
            table: table.index(),
            num_ids: ids.len(),
            max_id: ids.iter().copied().max(),
        })
    }
    fn dropout_with_mask(&self, x: Var, mask: Tensor) -> Var {
        self.record(OpKind::Dropout { x: x.index(), mask_shape: mask.shape().to_vec() })
    }
    fn concat_cols(&self, parts: &[Var]) -> Var {
        self.record(OpKind::ConcatCols { parts: parts.iter().map(|v| v.index()).collect() })
    }
    fn slice_cols(&self, x: Var, start: usize, end: usize) -> Var {
        self.record(OpKind::SliceCols { x: x.index(), start, end })
    }
    fn mean_all(&self, x: Var) -> Var {
        self.record(OpKind::MeanAll { x: x.index() })
    }
    fn sum_all(&self, x: Var) -> Var {
        self.record(OpKind::SumAll { x: x.index() })
    }
    fn cross_entropy(&self, logits: Var, targets: &[i64]) -> Var {
        self.record(OpKind::CrossEntropy {
            logits: logits.index(),
            num_targets: targets.len(),
            max_target: targets.iter().copied().filter(|&t| t >= 0).max(),
        })
    }
    fn push_scope(&self, name: &str) {
        let parent = self.current_scope();
        let mut graph = self.graph.borrow_mut();
        let path = if graph.scopes[parent as usize].is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", graph.scopes[parent as usize], name)
        };
        let id = match graph.scopes.iter().position(|s| *s == path) {
            Some(i) => i as u32,
            None => {
                graph.scopes.push(path);
                (graph.scopes.len() - 1) as u32
            }
        };
        self.scope_stack.borrow_mut().push(id);
    }
    fn pop_scope(&self) {
        self.scope_stack.borrow_mut().pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_shapes_without_values() {
        let sym = SymTape::new();
        let a = sym.leaf(Tensor::zeros(&[4, 8]));
        let b = sym.leaf(Tensor::zeros(&[8, 2]));
        let y = sym.matmul(a, b);
        assert_eq!(sym.shape(y), Some(vec![4, 2]));
        assert!(sym.findings().is_empty());
    }

    #[test]
    fn violation_matches_eager_panic_message() {
        let sym = SymTape::new();
        let a = sym.leaf(Tensor::zeros(&[2, 2]));
        let b = sym.leaf(Tensor::zeros(&[1, 3]));
        let y = sym.matmul(a, b);
        let findings = sym.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::ShapeViolation);
        assert_eq!(findings[0].node, y.index());
        assert_eq!(
            findings[0].message,
            gs_tensor::shape::matmul(&[2, 2], &[1, 3]).unwrap_err().to_string()
        );
        // Downstream of the violation: unknown shape, but no second finding.
        let z = sym.relu(y);
        assert_eq!(sym.shape(z), None);
        assert_eq!(sym.findings().len(), 1);
    }

    #[test]
    fn scopes_and_labels_flow_into_findings() {
        let sym = SymTape::new();
        sym.push_scope("l0");
        sym.push_scope("ffn");
        let x = sym.leaf(Tensor::zeros(&[2, 4]));
        let w = sym.leaf_labeled(&Tensor::zeros(&[3, 4]), "l0.ffn.w1");
        let _ = sym.matmul(x, w);
        sym.pop_scope();
        sym.pop_scope();
        let findings = sym.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].scope, "l0.ffn");
    }

    #[test]
    fn non_finite_leaf_is_reported() {
        let sym = SymTape::new();
        let _ = sym.leaf_labeled(&Tensor::vector(&[1.0, f32::NAN]), "emb.tok");
        let findings = sym.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::NonFiniteParam);
        assert_eq!(findings[0].label.as_deref(), Some("emb.tok"));
    }
}
