//! # gs-check
//!
//! Static analysis for gs-tensor programs, run *before* any forward pass:
//!
//! - [`SymTape`]: a shape-only recorder implementing
//!   [`TapeOps`](gs_tensor::TapeOps). Tracing a model through it validates
//!   every op against the same shape rules the eager tape enforces at
//!   runtime — identical messages, plus node/op/scope/label provenance —
//!   in milliseconds, without computing a single value.
//! - [`analyze`] / [`check_traced`] / [`check_tape`]: autograd-graph lints
//!   over the recorded [`Graph`](gs_tensor::Graph) — dead parameters,
//!   labeled constants on the gradient path, unused values, non-scalar
//!   losses, non-finite parameter tensors.
//! - [`GrowthMonitor`]: tape-leak detection across training steps.
//!
//! The runtime counterpart is the opt-in numeric sanitizer in
//! [`gs_tensor::sanitize`]; together they form the check stack described in
//! `DESIGN.md`.

#![warn(missing_docs)]

mod analyze;
mod growth;
mod sym;

pub use analyze::{analyze, Analysis, Finding, FindingKind};
pub use growth::{GrowthMonitor, GrowthReport};
pub use sym::SymTape;

use gs_tensor::{Tape, Var};

/// Finishes a symbolic trace and lints the result, merging the recorder's
/// shape/non-finite findings with the graph lints, ordered by node index.
pub fn check_traced(sym: SymTape, loss: Option<Var>) -> Analysis {
    let (graph, mut findings) = sym.finish();
    let mut analysis = analyze(&graph, loss);
    findings.append(&mut analysis.findings);
    findings.sort_by_key(|f| f.node);
    analysis.findings = findings;
    analysis
}

/// Lints a program an eager [`Tape`] already recorded (shapes are always
/// known there; shape violations would have panicked at record time).
pub fn check_tape(tape: &Tape, loss: Option<Var>) -> Analysis {
    analyze(&tape.export_graph(), loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_tensor::{TapeOps, Tensor};

    #[test]
    fn check_traced_merges_recorder_and_graph_findings() {
        let sym = SymTape::new();
        let x = sym.constant(Tensor::zeros(&[2, 4]));
        let w = sym.leaf_labeled(&Tensor::zeros(&[5, 5]), "head.w");
        let orphan = sym.leaf_labeled(&Tensor::vector(&[0.0]), "head.b");
        let y = sym.matmul(x, w); // shape violation (4 vs 5)
        let loss = sym.mean_all(y);
        let bad_matmul = y.index();
        let analysis = check_traced(sym, Some(loss));
        let kinds: Vec<_> = analysis.findings.iter().map(|f| (f.kind, f.node)).collect();
        assert!(kinds.contains(&(FindingKind::ShapeViolation, bad_matmul)));
        assert!(kinds.contains(&(FindingKind::DeadParam, orphan.index())));
        // Sorted by node index.
        let nodes: Vec<_> = analysis.findings.iter().map(|f| f.node).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(nodes, sorted);
    }

    #[test]
    fn check_tape_lints_eager_programs() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 4]));
        let w = tape.leaf_labeled(&Tensor::zeros(&[4, 3]), "head.w");
        let dead = tape.leaf_labeled(&Tensor::vector(&[0.0]), "head.b");
        let y = tape.matmul(x, w);
        let loss = tape.mean_all(y);
        let analysis = check_tape(&tape, Some(loss));
        assert_eq!(analysis.findings.len(), 1);
        assert_eq!(analysis.findings[0].kind, FindingKind::DeadParam);
        assert_eq!(analysis.findings[0].node, dead.index());
    }
}
