//! Autograd-graph lints over an exported [`Graph`].
//!
//! [`analyze`] walks a recorded program once and reports structural problems
//! the eager tape cannot see locally: parameters the loss never reaches,
//! constants sitting where a trainable parameter should be, values recorded
//! but never consumed, and a non-scalar loss.

use std::collections::HashSet;
use std::fmt;

use gs_tensor::{Graph, OpKind, Var};

/// What a [`Finding`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A shape rule rejected an op (message equals the eager panic text).
    ShapeViolation,
    /// A leaf tensor contains NaN or Inf before any op has run.
    NonFiniteParam,
    /// A trainable parameter the loss does not depend on: it will never
    /// receive a gradient, so training silently ignores it.
    DeadParam,
    /// A labeled constant on the path to the loss: a bound parameter was
    /// recorded with `requires_grad = false`, so it looks trained but is
    /// frozen.
    ConstantOnGradPath,
    /// A recorded value nothing consumes and that is not the loss: dead
    /// compute, or a wiring bug that dropped a connection.
    UnusedValue,
    /// The designated loss is not a scalar; `backward` would panic on it.
    NonScalarLoss,
}

impl FindingKind {
    /// Stable lowercase identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::ShapeViolation => "shape-violation",
            FindingKind::NonFiniteParam => "non-finite-param",
            FindingKind::DeadParam => "dead-param",
            FindingKind::ConstantOnGradPath => "constant-on-grad-path",
            FindingKind::UnusedValue => "unused-value",
            FindingKind::NonScalarLoss => "non-scalar-loss",
        }
    }
}

/// One problem found by static analysis, with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What kind of problem this is.
    pub kind: FindingKind,
    /// Index of the offending node in the recorded graph.
    pub node: usize,
    /// Name of the op at that node (matches `ShapeError::op`).
    pub op: &'static str,
    /// Dotted scope path active when the node was recorded.
    pub scope: String,
    /// Parameter label, for labeled leaves.
    pub label: Option<String>,
    /// Human-readable description; for shape violations this is exactly the
    /// message the eager tape would have panicked with.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] node {} ({})", self.kind.name(), self.node, self.op)?;
        if !self.scope.is_empty() {
            write!(f, " in scope {}", self.scope)?;
        }
        if let Some(label) = &self.label {
            write!(f, " param \"{label}\"")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Result of [`analyze`]: lint findings plus graph statistics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, in node order.
    pub findings: Vec<Finding>,
    /// Total nodes inspected.
    pub nodes: usize,
    /// Trainable-parameter leaves seen.
    pub params: usize,
}

impl Analysis {
    /// Whether the graph passed every lint.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints `graph`, treating `loss` (if given) as the value `backward` will be
/// called on. This covers only the graph-level lints; use
/// [`check_traced`](crate::check_traced) to also merge in the shape and
/// non-finite findings a [`SymTape`](crate::SymTape) collected while
/// recording.
pub fn analyze(graph: &Graph, loss: Option<Var>) -> Analysis {
    let n = graph.len();
    let mut consumers = vec![0usize; n];
    for node in &graph.nodes {
        for operand in node.kind.operands() {
            consumers[operand] += 1;
        }
    }

    // Ancestors of the loss: everything backward will visit.
    let mut on_grad_path = vec![false; n];
    if let Some(loss) = loss {
        let mut stack = vec![loss.index()];
        let mut seen: HashSet<usize> = HashSet::new();
        while let Some(idx) = stack.pop() {
            if !seen.insert(idx) {
                continue;
            }
            on_grad_path[idx] = true;
            stack.extend(graph.nodes[idx].kind.operands());
        }
    }

    let mut findings = Vec::new();
    let mut params = 0usize;
    for (idx, node) in graph.nodes.iter().enumerate() {
        let provenance = |message: String, kind: FindingKind| Finding {
            kind,
            node: idx,
            op: node.kind.name(),
            scope: graph.scope_name(node.scope).to_string(),
            label: node.label.clone(),
            message,
        };
        match &node.kind {
            OpKind::Leaf { requires_grad: true } => {
                params += 1;
                if loss.is_some() && !on_grad_path[idx] {
                    findings.push(provenance(
                        "trainable parameter is unreachable from the loss; it will never receive a gradient".to_string(),
                        FindingKind::DeadParam,
                    ));
                }
            }
            OpKind::Leaf { requires_grad: false } => {
                if node.label.is_some() && on_grad_path[idx] {
                    findings.push(provenance(
                        "labeled constant feeds the loss; a bound parameter was recorded without requires_grad and will stay frozen".to_string(),
                        FindingKind::ConstantOnGradPath,
                    ));
                }
            }
            _ => {
                let is_loss = loss.map(Var::index) == Some(idx);
                if consumers[idx] == 0 && !is_loss {
                    findings.push(provenance(
                        "value is never consumed and is not the loss; dead compute or a dropped connection".to_string(),
                        FindingKind::UnusedValue,
                    ));
                }
            }
        }
    }

    if let Some(loss) = loss {
        let node = &graph.nodes[loss.index()];
        if let Some(shape) = &node.shape {
            if !shape.is_empty() && shape.iter().product::<usize>() != 1 {
                findings.push(Finding {
                    kind: FindingKind::NonScalarLoss,
                    node: loss.index(),
                    op: node.kind.name(),
                    scope: graph.scope_name(node.scope).to_string(),
                    label: node.label.clone(),
                    message: format!("loss has shape {shape:?}; backward requires a scalar"),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.node);
    Analysis { findings, nodes: n, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymTape;
    use gs_tensor::{TapeOps, Tensor};

    fn scalar_loss(sym: &SymTape, v: Var) -> Var {
        sym.mean_all(v)
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let sym = SymTape::new();
        let x = sym.constant(Tensor::zeros(&[2, 4]));
        let w = sym.leaf_labeled(&Tensor::zeros(&[4, 3]), "head.w");
        let y = sym.matmul(x, w);
        let loss = scalar_loss(&sym, y);
        let (graph, findings) = sym.finish();
        assert!(findings.is_empty());
        let analysis = analyze(&graph, Some(loss));
        assert!(analysis.is_clean(), "{:?}", analysis.findings);
        assert_eq!(analysis.params, 1);
    }

    #[test]
    fn dead_param_is_reported() {
        let sym = SymTape::new();
        let x = sym.constant(Tensor::zeros(&[2, 4]));
        let w = sym.leaf_labeled(&Tensor::zeros(&[4, 3]), "head.w");
        let orphan = sym.leaf_labeled(&Tensor::vector(&[0.0; 3]), "head.b");
        let y = sym.matmul(x, w);
        let loss = scalar_loss(&sym, y);
        let (graph, _) = sym.finish();
        let analysis = analyze(&graph, Some(loss));
        assert_eq!(analysis.findings.len(), 1);
        let f = &analysis.findings[0];
        assert_eq!(f.kind, FindingKind::DeadParam);
        assert_eq!(f.node, orphan.index());
        assert_eq!(f.label.as_deref(), Some("head.b"));
    }

    #[test]
    fn labeled_constant_on_grad_path_is_reported() {
        let sym = SymTape::new();
        let x = sym.constant(Tensor::zeros(&[2, 4]));
        let w = sym.constant_labeled(&Tensor::zeros(&[4, 3]), "head.w");
        let y = sym.matmul(x, w);
        let loss = scalar_loss(&sym, y);
        let (graph, _) = sym.finish();
        let analysis = analyze(&graph, Some(loss));
        assert_eq!(analysis.findings.len(), 1);
        assert_eq!(analysis.findings[0].kind, FindingKind::ConstantOnGradPath);
        assert_eq!(analysis.findings[0].node, w.index());
    }

    #[test]
    fn unused_value_and_non_scalar_loss_are_reported() {
        let sym = SymTape::new();
        let x = sym.constant(Tensor::zeros(&[2, 4]));
        let w = sym.leaf_labeled(&Tensor::zeros(&[4, 3]), "head.w");
        let y = sym.matmul(x, w);
        let _dangling = sym.relu(y);
        let (graph, _) = sym.finish();
        // `y` feeds relu, relu feeds nothing; use `y` itself as the loss.
        let analysis = analyze(&graph, Some(y));
        let kinds: Vec<_> = analysis.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::UnusedValue));
        assert!(kinds.contains(&FindingKind::NonScalarLoss));
    }

    #[test]
    fn finding_display_includes_provenance() {
        let f = Finding {
            kind: FindingKind::DeadParam,
            node: 7,
            op: "leaf",
            scope: "l0.attn".to_string(),
            label: Some("l0.attn.wq".to_string()),
            message: "unreachable".to_string(),
        };
        assert_eq!(
            f.to_string(),
            "[dead-param] node 7 (leaf) in scope l0.attn param \"l0.attn.wq\": unreachable"
        );
    }
}
