//! Property test: on randomly generated valid-by-construction programs,
//! the shapes gs-check infers statically are exactly the shapes the eager
//! tape produces by running the forward pass. Any divergence means a
//! shape rule and the runtime kernel disagree about an op's contract.

use gs_check::SymTape;
use gs_tensor::{Tape, TapeOps, Tensor, Var};
use proptest::prelude::*;

/// Records the same program on an eager tape and a symbolic tape.
struct Twin {
    tape: Tape,
    sym: SymTape,
    /// Same-index pairs of handles; node indices agree on both tapes
    /// because every step records exactly one node on each.
    vars: Vec<(Var, Var)>,
}

impl Twin {
    fn new() -> Twin {
        Twin { tape: Tape::new(), sym: SymTape::new(), vars: Vec::new() }
    }

    fn push(&mut self, pair: (Var, Var)) -> (Var, Var) {
        self.vars.push(pair);
        pair
    }

    fn leaf(&mut self, t: Tensor) -> (Var, Var) {
        let pair = (self.tape.leaf(t.clone()), self.sym.leaf(t));
        self.push(pair)
    }

    fn shape_of(&self, pair: (Var, Var)) -> Vec<usize> {
        self.tape.value(pair.0).shape().to_vec()
    }

    /// An existing variable chosen by `pick`, filtered by `keep` on its
    /// eager shape. `None` when nothing qualifies.
    fn pick_var(&self, pick: usize, keep: impl Fn(&[usize]) -> bool) -> Option<(Var, Var)> {
        let matching: Vec<(Var, Var)> =
            self.vars.iter().copied().filter(|&pair| keep(&self.shape_of(pair))).collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching[pick % matching.len()])
        }
    }
}

fn rank2(shape: &[usize]) -> bool {
    shape.len() == 2
}

/// One interpreted step. `(rows, cols)` are 1-based free dimensions and
/// `pick` selects among the existing candidate variables.
fn step(twin: &mut Twin, opcode: u8, rows: usize, cols: usize, pick: usize) {
    // Fallback used whenever the op has no valid operand yet.
    macro_rules! operand {
        ($keep:expr) => {
            match twin.pick_var(pick, $keep) {
                Some(pair) => pair,
                None => twin.leaf(Tensor::full(&[rows, cols], 0.5)),
            }
        };
    }
    match opcode {
        0 => {
            twin.leaf(Tensor::full(&[rows, cols], 0.25));
        }
        1 => {
            // Elementwise pair: partner is a fresh leaf of the same shape.
            let a = operand!(|_| true);
            let b = twin.leaf(Tensor::full(&twin.shape_of(a), 1.5));
            let pair = (twin.tape.add(a.0, b.0), twin.sym.add(a.1, b.1));
            twin.push(pair);
        }
        2 => {
            let a = operand!(|_| true);
            let b = twin.leaf(Tensor::full(&twin.shape_of(a), 0.5));
            let pair = (twin.tape.mul(a.0, b.0), twin.sym.mul(a.1, b.1));
            twin.push(pair);
        }
        3 => {
            let a = operand!(|_| true);
            let pair = (twin.tape.scale(a.0, 2.0), twin.sym.scale(a.1, 2.0));
            twin.push(pair);
        }
        4 => {
            let a = operand!(rank2);
            let k = twin.shape_of(a)[1];
            let b = twin.leaf(Tensor::full(&[k, cols], 0.1));
            let pair = (twin.tape.matmul(a.0, b.0), twin.sym.matmul(a.1, b.1));
            twin.push(pair);
        }
        5 => {
            let a = operand!(rank2);
            let k = twin.shape_of(a)[1];
            let b = twin.leaf(Tensor::full(&[rows, k], 0.1));
            let pair = (twin.tape.matmul_transb(a.0, b.0), twin.sym.matmul_transb(a.1, b.1));
            twin.push(pair);
        }
        6 => {
            let a = operand!(|_| true);
            let pair = (twin.tape.relu(a.0), twin.sym.relu(a.1));
            twin.push(pair);
        }
        7 => {
            let a = operand!(|_| true);
            let pair = (twin.tape.gelu(a.0), twin.sym.gelu(a.1));
            twin.push(pair);
        }
        8 => {
            let a = operand!(rank2);
            let pair = (twin.tape.softmax_last_dim(a.0), twin.sym.softmax_last_dim(a.1));
            twin.push(pair);
        }
        9 => {
            let a = operand!(rank2);
            let d = twin.shape_of(a)[1];
            let bias = twin.leaf(Tensor::full(&[d], 0.01));
            let pair = (twin.tape.add_bias(a.0, bias.0), twin.sym.add_bias(a.1, bias.1));
            twin.push(pair);
        }
        10 => {
            let a = operand!(rank2);
            let d = twin.shape_of(a)[1];
            let gamma = twin.leaf(Tensor::full(&[d], 1.0));
            let beta = twin.leaf(Tensor::full(&[d], 0.0));
            let pair = (
                twin.tape.layer_norm(a.0, gamma.0, beta.0),
                twin.sym.layer_norm(a.1, gamma.1, beta.1),
            );
            twin.push(pair);
        }
        11 => {
            let table = operand!(rank2);
            let n = twin.shape_of(table)[0];
            let ids: Vec<usize> = (0..rows).map(|i| (pick + i) % n).collect();
            let pair =
                (twin.tape.embed_gather(table.0, &ids), twin.sym.embed_gather(table.1, &ids));
            twin.push(pair);
        }
        12 => {
            let a = operand!(rank2);
            let shape = twin.shape_of(a);
            let right = twin.leaf(Tensor::full(&[shape[0], cols], 0.2));
            let pair =
                (twin.tape.concat_cols(&[a.0, right.0]), twin.sym.concat_cols(&[a.1, right.1]));
            twin.push(pair);
        }
        13 => {
            let a = operand!(rank2);
            let c = twin.shape_of(a)[1];
            let start = pick % c;
            let end = start + 1 + (cols - 1).min(c - start - 1);
            let pair =
                (twin.tape.slice_cols(a.0, start, end), twin.sym.slice_cols(a.1, start, end));
            twin.push(pair);
        }
        14 => {
            let a = operand!(|_| true);
            let pair = (twin.tape.mean_all(a.0), twin.sym.mean_all(a.1));
            twin.push(pair);
        }
        15 => {
            let a = operand!(|_| true);
            let mask = Tensor::full(&twin.shape_of(a), 1.0);
            let pair = (
                twin.tape.dropout_with_mask(a.0, mask.clone()),
                twin.sym.dropout_with_mask(a.1, mask),
            );
            twin.push(pair);
        }
        _ => {
            let logits = operand!(rank2);
            let [n, c] = twin.shape_of(logits)[..] else { unreachable!() };
            let targets: Vec<i64> = (0..n).map(|i| ((pick + i) % c) as i64).collect();
            let pair = (
                twin.tape.cross_entropy(logits.0, &targets),
                twin.sym.cross_entropy(logits.1, &targets),
            );
            twin.push(pair);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_shapes_match_eager_execution(
        ops in prop::collection::vec((0u8..17, 1usize..5, 1usize..5, 0usize..64), 1..24)
    ) {
        let mut twin = Twin::new();
        for (opcode, rows, cols, pick) in ops {
            step(&mut twin, opcode, rows, cols, pick);
        }
        // Valid-by-construction programs must analyze clean...
        prop_assert!(twin.sym.findings().is_empty(), "{:#?}", twin.sym.findings());
        // ...and every inferred shape must equal the executed shape.
        for &(eager, symbolic) in &twin.vars {
            let ran = twin.tape.value(eager).shape().to_vec();
            let inferred = twin.sym.shape(symbolic);
            prop_assert_eq!(
                inferred.clone(),
                Some(ran.clone()),
                "node {}: static {:?} vs eager {:?}",
                symbolic.index(),
                inferred,
                ran
            );
        }
    }
}
