//! Mutation self-test: a miniature encoder trace with one deliberately
//! injected bug per case. Each mutation must be flagged by gs-check with
//! the correct finding kind and provenance (node, op, scope, label) —
//! before any forward pass could run — and the unmutated trace must be
//! completely clean. This is the test that keeps the analyzer honest: a
//! lint that stops firing breaks one of these cases.

use gs_check::{check_traced, Analysis, FindingKind, SymTape};
use gs_tensor::{TapeOps, Tensor, Var};

/// Which single bug to inject into the trace. `None` of them = clean.
#[derive(Default, Clone, Copy)]
struct Mutation {
    /// FFN `w1` stored transposed (`[d_ff, d]` instead of `[d, d_ff]`).
    transposed_ffn_w1: bool,
    /// Embedding layer-norm gamma has length `d + 1`.
    wrong_gamma_shape: bool,
    /// Classifier head recorded but never wired to the loss.
    detached_head: bool,
    /// Head weight bound as a labeled constant (frozen parameter).
    frozen_head: bool,
    /// One NaN inside the token-embedding table.
    nan_in_embedding: bool,
    /// A token id one past the vocabulary size.
    out_of_vocab_id: bool,
    /// Column slice past the hidden width.
    bad_slice: bool,
    /// A class target `>= num_classes`.
    bad_target: bool,
    /// Column-concat of parts with mismatched row counts.
    concat_row_mismatch: bool,
    /// An activation computed and then dropped on the floor.
    unused_intermediate: bool,
    /// The raw logits used as the loss instead of the reduced scalar.
    non_scalar_loss: bool,
    /// Dropout mask recorded with the wrong shape.
    wrong_dropout_mask: bool,
    /// Extra residual-path depth: exercise a second block when clean.
    two_blocks: bool,
}

const VOCAB: usize = 8;
const D: usize = 4;
const D_FF: usize = 6;
const SEQ: usize = 3;
const CLASSES: usize = 5;

/// Records one FFN block (`h @ w1 + b1 -> gelu -> @ w2 + b2`, residual).
fn ffn_block(sym: &SymTape, h: Var, layer: usize, m: Mutation) -> Var {
    sym.push_scope(&format!("l{layer}.ffn"));
    let w1_shape: &[usize] =
        if m.transposed_ffn_w1 && layer == 0 { &[D_FF, D] } else { &[D, D_FF] };
    let w1 = sym.leaf_labeled(&Tensor::zeros(w1_shape), &format!("l{layer}.ffn.w1"));
    let b1 = sym.leaf_labeled(&Tensor::zeros(&[D_FF]), &format!("l{layer}.ffn.b1"));
    let w2 = sym.leaf_labeled(&Tensor::zeros(&[D_FF, D]), &format!("l{layer}.ffn.w2"));
    let b2 = sym.leaf_labeled(&Tensor::zeros(&[D]), &format!("l{layer}.ffn.b2"));
    let a = sym.gelu(sym.add_bias(sym.matmul(h, w1), b1));
    let f = sym.add_bias(sym.matmul(a, w2), b2);
    let out = sym.add(h, f);
    sym.pop_scope();
    out
}

/// Traces the miniature encoder with `m`'s bug injected, returning the
/// merged static analysis.
fn trace(m: Mutation) -> Analysis {
    let sym = SymTape::new();

    sym.push_scope("emb");
    let mut table = Tensor::zeros(&[VOCAB, D]);
    if m.nan_in_embedding {
        table.data_mut()[2 * D + 1] = f32::NAN;
    }
    let tok = sym.leaf_labeled(&table, "emb.tok");
    let ids: Vec<usize> =
        (0..SEQ).map(|i| if m.out_of_vocab_id && i == 1 { VOCAB } else { i % VOCAB }).collect();
    let gathered = sym.embed_gather(tok, &ids);
    let gamma_len = if m.wrong_gamma_shape { D + 1 } else { D };
    let g = sym.leaf_labeled(&Tensor::zeros(&[gamma_len]), "emb.ln.g");
    let b = sym.leaf_labeled(&Tensor::zeros(&[D]), "emb.ln.b");
    let mut h = sym.layer_norm(gathered, g, b);
    sym.pop_scope();

    h = ffn_block(&sym, h, 0, m);
    if m.two_blocks {
        h = ffn_block(&sym, h, 1, m);
    }

    if m.bad_slice {
        h = sym.slice_cols(h, 0, D + 2);
    }
    if m.concat_row_mismatch {
        let stray = sym.constant(Tensor::zeros(&[SEQ + 1, 2]));
        h = sym.concat_cols(&[sym.slice_cols(h, 0, D), stray]);
        h = sym.slice_cols(h, 0, D);
    }
    if m.wrong_dropout_mask {
        h = sym.dropout_with_mask(h, Tensor::zeros(&[SEQ, D + 1]));
    }
    if m.unused_intermediate {
        let _dropped = sym.relu(h);
    }

    sym.push_scope("head");
    let hw = Tensor::zeros(&[D, CLASSES]);
    let w = if m.frozen_head {
        sym.constant_labeled(&hw, "head.w")
    } else {
        sym.leaf_labeled(&hw, "head.w")
    };
    let wb = sym.leaf_labeled(&Tensor::zeros(&[CLASSES]), "head.b");
    let logits = sym.add_bias(sym.matmul(h, w), wb);
    sym.pop_scope();

    let targets: Vec<i64> = (0..SEQ)
        .map(|i| if m.bad_target && i == 0 { CLASSES as i64 } else { i as i64 % 3 })
        .collect();
    let loss = if m.detached_head {
        // "Forgot the head": reduce the hidden state directly.
        sym.mean_all(h)
    } else {
        sym.cross_entropy(logits, &targets)
    };
    let designated = if m.non_scalar_loss { logits } else { loss };
    check_traced(sym, Some(designated))
}

/// The single finding of `kind`, asserting it is the only one.
fn only_finding(analysis: &Analysis, kind: FindingKind) -> gs_check::Finding {
    assert_eq!(
        analysis.findings.len(),
        1,
        "expected exactly one {kind:?}, got: {:#?}",
        analysis.findings
    );
    let f = analysis.findings[0].clone();
    assert_eq!(f.kind, kind, "wrong kind: {f}");
    f
}

#[test]
fn clean_traces_have_zero_findings() {
    for two_blocks in [false, true] {
        let analysis = trace(Mutation { two_blocks, ..Mutation::default() });
        assert!(
            analysis.is_clean(),
            "clean trace (two_blocks={two_blocks}) flagged: {:#?}",
            analysis.findings
        );
        // 4 FFN params per block + emb.tok + 2 ln + head.w + head.b.
        let expected = if two_blocks { 13 } else { 9 };
        assert_eq!(analysis.params, expected);
    }
}

#[test]
fn transposed_matmul_operand_is_flagged_in_its_layer() {
    let analysis = trace(Mutation { transposed_ffn_w1: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "matmul");
    assert_eq!(f.scope, "l0.ffn");
    // Identical to what the eager tape would have panicked with.
    assert_eq!(f.message, gs_tensor::shape::matmul(&[SEQ, D], &[D_FF, D]).unwrap_err().to_string());
}

#[test]
fn wrong_gamma_shape_is_flagged_at_the_layer_norm() {
    let analysis = trace(Mutation { wrong_gamma_shape: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "layer_norm");
    assert_eq!(f.scope, "emb");
    assert_eq!(
        f.message,
        gs_tensor::shape::layer_norm(&[SEQ, D], &[D + 1], &[D]).unwrap_err().to_string()
    );
}

#[test]
fn detached_head_reports_both_dead_params() {
    let analysis = trace(Mutation { detached_head: true, ..Mutation::default() });
    // head.w and head.b never reach the loss; the logits chain is also
    // unconsumed dead compute.
    let dead: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.kind == FindingKind::DeadParam)
        .map(|f| f.label.clone().unwrap())
        .collect();
    assert_eq!(dead, vec!["head.w".to_string(), "head.b".to_string()]);
    assert!(
        analysis
            .findings
            .iter()
            .all(|f| matches!(f.kind, FindingKind::DeadParam | FindingKind::UnusedValue)),
        "unexpected kinds: {:#?}",
        analysis.findings
    );
    let dead_scopes: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.kind == FindingKind::DeadParam)
        .map(|f| f.scope.as_str())
        .collect();
    assert_eq!(dead_scopes, vec!["head", "head"]);
}

#[test]
fn frozen_head_weight_is_flagged_as_constant_on_grad_path() {
    let analysis = trace(Mutation { frozen_head: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ConstantOnGradPath);
    assert_eq!(f.label.as_deref(), Some("head.w"));
    assert_eq!(f.scope, "head");
    assert_eq!(f.op, "leaf");
}

#[test]
fn nan_in_embedding_table_is_flagged_before_any_math() {
    let analysis = trace(Mutation { nan_in_embedding: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::NonFiniteParam);
    assert_eq!(f.label.as_deref(), Some("emb.tok"));
    assert_eq!(f.scope, "emb");
    assert_eq!(f.node, 0, "the table is the very first node");
    assert!(f.message.contains("NaN"), "message: {}", f.message);
}

#[test]
fn out_of_vocab_id_is_flagged_at_the_gather() {
    let analysis = trace(Mutation { out_of_vocab_id: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "embed_gather");
    assert_eq!(f.scope, "emb");
    assert_eq!(
        f.message,
        gs_tensor::shape::embed_gather(&[VOCAB, D], SEQ, Some(VOCAB)).unwrap_err().to_string()
    );
}

#[test]
fn slice_past_hidden_width_is_flagged() {
    let analysis = trace(Mutation { bad_slice: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "slice_cols");
    assert_eq!(
        f.message,
        gs_tensor::shape::slice_cols(&[SEQ, D], 0, D + 2).unwrap_err().to_string()
    );
}

#[test]
fn target_out_of_class_range_is_flagged() {
    let analysis = trace(Mutation { bad_target: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "cross_entropy");
    assert_eq!(
        f.message,
        gs_tensor::shape::cross_entropy(&[SEQ, CLASSES], SEQ, Some(CLASSES as i64))
            .unwrap_err()
            .to_string()
    );
}

#[test]
fn concat_with_mismatched_rows_is_flagged() {
    let analysis = trace(Mutation { concat_row_mismatch: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "concat_cols");
    assert_eq!(
        f.message,
        gs_tensor::shape::concat_cols(&[&[SEQ, D], &[SEQ + 1, 2]]).unwrap_err().to_string()
    );
}

#[test]
fn wrong_dropout_mask_shape_is_flagged() {
    let analysis = trace(Mutation { wrong_dropout_mask: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::ShapeViolation);
    assert_eq!(f.op, "dropout");
    assert_eq!(
        f.message,
        gs_tensor::shape::dropout(&[SEQ, D], &[SEQ, D + 1]).unwrap_err().to_string()
    );
}

#[test]
fn unused_intermediate_is_flagged_as_dead_compute() {
    let analysis = trace(Mutation { unused_intermediate: true, ..Mutation::default() });
    let f = only_finding(&analysis, FindingKind::UnusedValue);
    assert_eq!(f.op, "relu");
}

#[test]
fn non_scalar_loss_is_flagged_before_backward_would_panic() {
    let analysis = trace(Mutation { non_scalar_loss: true, ..Mutation::default() });
    let kinds: Vec<_> = analysis.findings.iter().map(|f| f.kind).collect();
    assert!(kinds.contains(&FindingKind::NonScalarLoss), "findings: {:#?}", analysis.findings);
    let f = analysis.findings.iter().find(|f| f.kind == FindingKind::NonScalarLoss).unwrap();
    assert!(
        f.message.contains(&format!("{:?}", [SEQ, CLASSES])),
        "message should name the offending shape: {}",
        f.message
    );
}
