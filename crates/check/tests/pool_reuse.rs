//! Pool-reuse soak: repeatedly building, running, and dropping tapes on
//! top of a persistent gs-par pool must not grow the tape or the pool's
//! pending-work queue. The [`GrowthMonitor`] flatness contract is the
//! assertion surface: the workload replays one identical step, so any
//! drift in node count means state leaked across steps.

use gs_check::GrowthMonitor;
use gs_tensor::{Tape, Tensor};

/// One forward/backward large enough to cross every parallel cutoff
/// (matmul flops, elementwise volume, row-kernel volume); returns the
/// tape's final node count.
fn one_step() -> usize {
    let dim = 64;
    let a = Tensor::from_vec(
        vec![dim, dim],
        (0..dim * dim).map(|i| ((i % 13) as f32 - 6.0) * 0.05).collect(),
    );
    let b = Tensor::from_vec(
        vec![dim, dim],
        (0..dim * dim).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect(),
    );
    let gamma = Tensor::full(&[dim], 1.0);
    let beta = Tensor::zeros(&[dim]);

    let tape = Tape::new();
    let va = tape.leaf(a);
    let vb = tape.leaf(b);
    let prod = tape.matmul(va, vb);
    let vg = tape.leaf(gamma);
    let vbeta = tape.leaf(beta);
    let normed = tape.layer_norm(prod, vg, vbeta);
    let soft = tape.softmax_last_dim(normed);
    let act = tape.gelu(soft);
    let loss = tape.mean_all(act);
    let grads = tape.backward(loss);
    assert!(grads.get(va).is_some(), "matmul input never received a gradient");
    tape.len()
}

#[test]
fn tape_stays_flat_across_pool_reuse() {
    let _scope = gs_par::ParScope::new(4);
    let before = gs_par::stats();
    let mut monitor = GrowthMonitor::new(8);
    for round in 0..50 {
        let nodes = one_step();
        assert_eq!(monitor.observe(nodes), None, "growth report on round {round}");
    }
    assert!(monitor.is_flat(), "identical steps produced varying tape sizes");
    assert_eq!(monitor.observations(), 50);
    assert!(monitor.peak() > 0);
    let after = gs_par::stats();
    assert!(after.dispatches > before.dispatches, "pool never engaged: {before:?} -> {after:?}");
}

#[test]
fn tape_size_is_pool_size_invariant() {
    // The tape records the same graph no matter how many workers execute
    // the kernels; a divergence would mean parallel dispatch changed what
    // was recorded, not just how it was computed.
    let sizes: Vec<usize> =
        [1usize, 2, 4].iter().map(|&threads| gs_par::with_threads(threads, one_step)).collect();
    assert_eq!(sizes[0], sizes[1]);
    assert_eq!(sizes[1], sizes[2]);
}

#[test]
fn pool_queue_stays_bounded_across_reuse() {
    let _scope = gs_par::ParScope::new(4);
    for _ in 0..20 {
        let _ = one_step();
    }
    let stats = gs_par::stats();
    // Each dispatch enqueues at most (threads - 1) helper jobs; reuse must
    // not let completed jobs pile up in the queue.
    assert!(stats.peak_queue <= 64, "queue peaked at {}", stats.peak_queue);
}
