//! Fixed-width text table rendering for the benchmark harnesses, so each
//! binary can print rows that mirror the paper's tables.

/// A simple text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability-like value with 2 decimals, as the paper's tables
/// do (e.g. `0.85`).
pub fn fmt2(x: f64) -> String {
    format!("{:.2}", x)
}

/// Formats seconds compactly (`<1s`, `12.3s`, `4m05s`).
pub fn fmt_duration(seconds: f64) -> String {
    if seconds < 1.0 {
        "<1s".to_string()
    } else if seconds < 60.0 {
        format!("{:.1}s", seconds)
    } else {
        let m = (seconds / 60.0).floor() as u64;
        let s = seconds - m as f64 * 60.0;
        format!("{}m{:04.1}s", m, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Approach", "P", "R"]);
        t.row_strs(&["CRF", "0.64", "0.59"]);
        t.row_strs(&["GoalSpotter", "0.87", "0.83"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{rendered}");
        assert!(rendered.contains("GoalSpotter"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(0.2), "<1s");
        assert_eq!(fmt_duration(12.34), "12.3s");
        assert_eq!(fmt_duration(65.0), "1m05.0s");
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(0.851), "0.85");
        assert_eq!(fmt2(0.999), "1.00");
    }
}
