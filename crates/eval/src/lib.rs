//! # gs-eval
//!
//! Evaluation substrate: the paper's Precision/Recall/F1 definitions at the
//! field level (extracted details vs gold annotations), token- and
//! entity-level diagnostics on IOB sequences, multi-run mean/stderr
//! aggregation, wall-clock + simulated timing, and fixed-width table
//! rendering for the harness binaries.

#![warn(missing_docs)]

mod metrics;
mod report;
mod timing;

pub use metrics::{
    entity_counts, evaluate_extractions, run_stats, score_extraction, token_accuracy, values_match,
    Counts, FieldEval, RunStats,
};
pub use report::{fmt2, fmt_duration, TextTable};
pub use timing::{time_it, Stopwatch};
