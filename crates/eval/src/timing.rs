//! Wall-clock timing plus the "simulated minutes" accounting used for the
//! LLM-prompting baselines' efficiency column (see DESIGN.md).
//!
//! Since the observability PR there is a single source of wall-clock truth
//! in the workspace: `gs-obs`. This module re-exports its clock so existing
//! `gs_eval::{Stopwatch, time_it}` callers keep working; the simulated-time
//! `charge` semantics (the LLM-baseline T column of Table 4) live on
//! [`Stopwatch`] unchanged.

pub use gs_obs::{time_it, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn charge_accumulates_simulated_time() {
        let mut sw = Stopwatch::start();
        sw.charge(Duration::from_secs(3));
        sw.charge(Duration::from_secs(4));
        assert_eq!(sw.elapsed_simulated(), Duration::from_secs(7));
        assert!(sw.elapsed_total() >= Duration::from_secs(7));
    }

    #[test]
    fn time_it_returns_result_and_seconds() {
        let (value, secs) = time_it(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn stopwatch_and_span_clock_share_a_source() {
        // Both delegate to std::time::Instant via gs-obs; this is a smoke
        // check that the re-export is live.
        let sw = Stopwatch::start();
        let (_, secs) = time_it(|| std::hint::black_box(1 + 1));
        assert!(sw.elapsed_real().as_secs_f64() >= secs * 0.0);
    }
}
