//! Precision / Recall / F1 as the paper defines them (§4.1):
//!
//! - TP: the approach correctly extracted information that was actually
//!   present;
//! - FP: the approach incorrectly extracted information (wrong value, or a
//!   value where none was annotated);
//! - FN: the approach failed to extract information that was present.
//!
//! Field-level scoring compares extracted details against the gold
//! annotations per (objective, field); token-level and entity-level scoring
//! operate on IOB tag sequences for model diagnostics.

use gs_core::{Annotations, ExtractedDetails};
use gs_text::labels::{decode_spans, LabelSet, Tag};
use gs_text::match_key;
use serde::{Deserialize, Serialize};

/// Raw confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Counts {
    /// Adds another count set.
    pub fn merge(&mut self, other: &Counts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision = TP / (TP + FP); 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Field-level evaluation result: per-field counts plus the micro average.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FieldEval {
    /// Field names in label-set order.
    pub fields: Vec<String>,
    /// Counts per field, parallel to `fields`.
    pub per_field: Vec<Counts>,
    /// Micro-averaged counts over all fields.
    pub micro: Counts,
}

impl FieldEval {
    /// Counts for a named field.
    pub fn field(&self, name: &str) -> Option<&Counts> {
        self.fields.iter().position(|f| f == name).map(|i| &self.per_field[i])
    }
}

/// Whether an extracted value matches a gold value. The comparison is
/// case-insensitive and punctuation-trimmed (`match_key`): extracting
/// "Net-zero," for gold "net-zero" is correct information.
pub fn values_match(extracted: &str, gold: &str) -> bool {
    match_key(extracted) == match_key(gold)
}

/// Scores one objective's extraction against its gold annotations.
pub fn score_extraction(
    gold: &Annotations,
    extracted: &ExtractedDetails,
    labels: &LabelSet,
) -> Vec<Counts> {
    let mut out = vec![Counts::default(); labels.num_kinds()];
    for (kind, counts) in out.iter_mut().enumerate() {
        let name = labels.kind_name(kind);
        let gold_value = gold.get(name).filter(|v| !v.is_empty());
        let extracted_value = extracted.get(name).filter(|v| !v.is_empty());
        match (gold_value, extracted_value) {
            (Some(g), Some(e)) => {
                if values_match(e, g) {
                    counts.tp += 1;
                } else {
                    counts.fp += 1;
                    counts.fn_ += 1;
                }
            }
            (Some(_), None) => counts.fn_ += 1,
            (None, Some(_)) => counts.fp += 1,
            (None, None) => {}
        }
    }
    out
}

/// Scores a whole test set of (gold, extracted) pairs.
pub fn evaluate_extractions<'a>(
    pairs: impl IntoIterator<Item = (&'a Annotations, &'a ExtractedDetails)>,
    labels: &LabelSet,
) -> FieldEval {
    let mut per_field = vec![Counts::default(); labels.num_kinds()];
    for (gold, extracted) in pairs {
        for (kind, c) in score_extraction(gold, extracted, labels).into_iter().enumerate() {
            per_field[kind].merge(&c);
        }
    }
    let mut micro = Counts::default();
    for c in &per_field {
        micro.merge(c);
    }
    FieldEval { fields: labels.kind_names().map(str::to_string).collect(), per_field, micro }
}

/// Token-level accuracy over tag sequences (diagnostic; dominated by `O`).
pub fn token_accuracy(gold: &[Tag], predicted: &[Tag]) -> f64 {
    assert_eq!(gold.len(), predicted.len());
    if gold.is_empty() {
        return 1.0;
    }
    let correct = gold.iter().zip(predicted).filter(|(g, p)| g == p).count();
    correct as f64 / gold.len() as f64
}

/// Entity-level (CoNLL-style) counts per kind: a predicted span is TP only
/// if an identical (kind, start, end) span exists in gold.
pub fn entity_counts(gold: &[Tag], predicted: &[Tag], labels: &LabelSet) -> Vec<Counts> {
    assert_eq!(gold.len(), predicted.len());
    let gold_spans = decode_spans(gold);
    let pred_spans = decode_spans(predicted);
    let mut out = vec![Counts::default(); labels.num_kinds()];
    for p in &pred_spans {
        if gold_spans.contains(p) {
            out[p.kind].tp += 1;
        } else {
            out[p.kind].fp += 1;
        }
    }
    for g in &gold_spans {
        if !pred_spans.contains(g) {
            out[g.kind].fn_ += 1;
        }
    }
    out
}

/// Mean and standard error over multiple runs (the paper reports means of 5
/// runs and notes stderr < 1%).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Mean value.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Number of runs.
    pub n: usize,
}

/// Aggregates independent run results.
pub fn run_stats(values: &[f64]) -> RunStats {
    let n = values.len();
    if n == 0 {
        return RunStats::default();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return RunStats { mean, stderr: 0.0, n };
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    RunStats { mean, stderr: (var / n as f64).sqrt(), n }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelSet {
        LabelSet::sustainability_goals()
    }

    #[test]
    fn counts_formulas() {
        let c = Counts { tp: 8, fp: 2, fn_: 4 };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((c.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn zero_counts_are_safe() {
        let c = Counts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn exact_extraction_is_tp() {
        let ls = labels();
        let gold = Annotations::new().with("Action", "reach").with("Deadline", "2040");
        let mut ext = ExtractedDetails::new();
        ext.set("Action", "reach");
        ext.set("Deadline", "2040");
        let eval = evaluate_extractions([(&gold, &ext)], &ls);
        assert_eq!(eval.micro, Counts { tp: 2, fp: 0, fn_: 0 });
    }

    #[test]
    fn wrong_value_is_fp_and_fn() {
        let ls = labels();
        let gold = Annotations::new().with("Deadline", "2040");
        let mut ext = ExtractedDetails::new();
        ext.set("Deadline", "2025");
        let eval = evaluate_extractions([(&gold, &ext)], &ls);
        assert_eq!(eval.micro, Counts { tp: 0, fp: 1, fn_: 1 });
    }

    #[test]
    fn spurious_extraction_is_fp() {
        let ls = labels();
        let gold = Annotations::new().with("Action", "Reduce");
        let mut ext = ExtractedDetails::new();
        ext.set("Action", "Reduce");
        ext.set("Amount", "20%");
        let eval = evaluate_extractions([(&gold, &ext)], &ls);
        assert_eq!(eval.micro, Counts { tp: 1, fp: 1, fn_: 0 });
    }

    #[test]
    fn missed_field_is_fn() {
        let ls = labels();
        let gold = Annotations::new().with("Qualifier", "carbon");
        let ext = ExtractedDetails::new();
        let eval = evaluate_extractions([(&gold, &ext)], &ls);
        assert_eq!(eval.micro, Counts { tp: 0, fp: 0, fn_: 1 });
        assert_eq!(eval.field("Qualifier").expect("field").fn_, 1);
    }

    #[test]
    fn matching_is_case_and_punct_insensitive() {
        assert!(values_match("Net-Zero,", "net-zero"));
        assert!(values_match("100%", "100%"));
        assert!(!values_match("2040", "2025"));
    }

    #[test]
    fn token_accuracy_counts_matches() {
        let gold = vec![Tag::O, Tag::B(0), Tag::I(0)];
        let pred = vec![Tag::O, Tag::B(0), Tag::O];
        assert!((token_accuracy(&gold, &pred) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entity_counts_require_exact_span() {
        let ls = labels();
        let gold = vec![Tag::B(0), Tag::I(0), Tag::O, Tag::B(1)];
        // Predicted Action span too short, Amount exact.
        let pred = vec![Tag::B(0), Tag::O, Tag::O, Tag::B(1)];
        let counts = entity_counts(&gold, &pred, &ls);
        assert_eq!(counts[0], Counts { tp: 0, fp: 1, fn_: 1 });
        assert_eq!(counts[1], Counts { tp: 1, fp: 0, fn_: 0 });
    }

    #[test]
    fn run_stats_mean_and_stderr() {
        let s = run_stats(&[0.9, 0.92, 0.91, 0.93, 0.89]);
        assert!((s.mean - 0.91).abs() < 1e-9);
        assert!(s.stderr > 0.0 && s.stderr < 0.01);
        assert_eq!(s.n, 5);
        assert_eq!(run_stats(&[]).n, 0);
        assert_eq!(run_stats(&[0.5]).stderr, 0.0);
    }
}
