//! The sharded objective database: hash-by-company routing over
//! crash-safe, log-structured shards with lock-free concurrent readers.
//!
//! ## Layout on disk
//!
//! ```text
//! <dir>/store.meta      # "gs-store v2" + shard count (fixed at creation)
//! <dir>/shard-0.log     # per-shard WAL, see `wal` module for the framing
//! <dir>/shard-1.log
//! ...
//! ```
//!
//! A record lives in the shard its *company* hashes to, so every query
//! scoped to one company touches exactly one shard and writers for
//! different companies rarely contend. The shard count is persisted in
//! `store.meta` and wins over the configured value on reopen — resharding
//! would silently strand records otherwise.
//!
//! ## Concurrency
//!
//! Writes take one shard's mutex; reads go through [`StoreReader`], which
//! caches each shard's epoch and immutable view — steady-state reads cost
//! one atomic load per shard and never block behind the writer. Compaction
//! ([`ObjectiveDb::compact_all`]) fans out across shards on the gs-par
//! pool, and [`ObjectiveDb::spawn_compactor`] runs the same sweep on a
//! background thread whenever a shard's log accumulates enough ops.

use gs_race::sync::{AtomicBool, Ordering};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::codec;
use crate::hash::fnv1a64;
use crate::objective_store::ObjectiveRecord;
use crate::shard::{CompactionStats, Shard, UpsertOutcome};
use crate::view::ReadHandle;
use crate::wal::{ReplayReport, SyncPolicy};

/// First line of `store.meta`.
const META_MAGIC: &str = "gs-store v2";

/// Tuning knobs for an [`ObjectiveDb`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Shard count for a *newly created* store; an existing store keeps the
    /// count recorded in its `store.meta`.
    pub shards: usize,
    /// When WAL appends fsync.
    pub sync: SyncPolicy,
    /// Upserts a shard buffers in its delta before folding a fresh base
    /// generation (bounds per-read delta scans).
    pub fold_threshold: usize,
    /// Auto-compact a shard once this many upserts accumulate in its log
    /// since the last compaction. `0` disables auto-compaction.
    pub compact_after_ops: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            sync: SyncPolicy::Always,
            fold_threshold: 128,
            compact_after_ops: 0,
        }
    }
}

/// What opening a store recovered from disk.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Per-shard replay accounting.
    pub shards: Vec<ReplayReport>,
    /// Live records after replay.
    pub records: usize,
}

impl RecoveryReport {
    /// Total clean frames replayed.
    pub fn frames(&self) -> usize {
        self.shards.iter().map(|r| r.frames).sum()
    }

    /// How many shards had a torn tail truncated.
    pub fn torn_tails(&self) -> usize {
        self.shards.iter().filter(|r| r.torn_tail).count()
    }

    /// Total bytes discarded as torn.
    pub fn torn_bytes(&self) -> u64 {
        self.shards.iter().map(|r| r.torn_bytes).sum()
    }
}

/// The sharded, crash-safe objective database.
pub struct ObjectiveDb {
    shards: Arc<Vec<Shard>>,
    config: StoreConfig,
    dir: Option<PathBuf>,
}

impl std::fmt::Debug for ObjectiveDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectiveDb")
            .field("shards", &self.shards.len())
            .field("dir", &self.dir)
            .finish()
    }
}

fn read_meta(path: &Path) -> io::Result<Option<usize>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a {META_MAGIC} meta file", path.display()),
        ));
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n > 0);
    shards.map(Some).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: malformed shard count", path.display()),
        )
    })
}

impl ObjectiveDb {
    /// Opens (creating if needed) a persistent store under `dir`, replaying
    /// every shard log and truncating torn tails.
    pub fn open(dir: &Path, config: StoreConfig) -> io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let meta_path = dir.join("store.meta");
        let shard_count = match read_meta(&meta_path)? {
            Some(n) => n,
            None => {
                let n = config.shards.max(1);
                std::fs::write(&meta_path, format!("{META_MAGIC}\nshards {n}\n"))?;
                n
            }
        };
        let started = std::time::Instant::now();
        let mut shards = Vec::with_capacity(shard_count);
        let mut report = RecoveryReport::default();
        for i in 0..shard_count {
            let path = dir.join(format!("shard-{i}.log"));
            let (shard, rep) = Shard::open(i, Some(&path), config.sync, config.fold_threshold)?;
            report.records += shard.len();
            report.shards.push(rep);
            shards.push(shard);
        }
        let db = ObjectiveDb { shards: Arc::new(shards), config, dir: Some(dir.to_path_buf()) };
        if gs_obs::enabled() {
            let elapsed = started.elapsed();
            gs_obs::prof::record_at(
                "store",
                "wal.replay",
                elapsed.as_nanos() as u64,
                gs_obs::prof::Cost::new(0, report.shards.iter().map(|r| r.clean_bytes).sum()),
            );
            gs_obs::observe("store.recover_s", elapsed.as_secs_f64());
            gs_obs::counter("store.recover.frames", report.frames() as u64);
            db.publish_gauges();
        }
        Ok((db, report))
    }

    /// An in-memory store with the same upsert/merge/read semantics and no
    /// durability — the default for tests and one-shot pipeline runs.
    pub fn ephemeral(config: StoreConfig) -> Self {
        let shard_count = config.shards.max(1);
        let shards = (0..shard_count)
            .map(|i| {
                Shard::open(i, None, config.sync, config.fold_threshold)
                    .expect("ephemeral shard cannot fail")
                    .0
            })
            .collect();
        ObjectiveDb { shards: Arc::new(shards), config, dir: None }
    }

    fn shard_for(&self, company: &str) -> &Shard {
        let i = (fnv1a64(company.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    fn publish_gauges(&self) {
        let mut total = 0usize;
        for shard in self.shards.iter() {
            let len = shard.len();
            total += len;
            gs_obs::gauge(&format!("store.shard{}.records", shard.id()), len as f64);
            gs_obs::gauge(
                &format!("store.shard{}.wal_bytes", shard.id()),
                shard.wal_bytes() as f64,
            );
        }
        gs_obs::gauge("store.records", total as f64);
    }

    /// Upserts one record: routed by company, merged by (company,
    /// objective), idempotent on identical content.
    pub fn upsert(&self, record: &ObjectiveRecord) -> io::Result<UpsertOutcome> {
        let shard = self.shard_for(&record.company);
        let outcome = shard.upsert(record)?;
        if gs_obs::enabled() {
            let label = match outcome {
                UpsertOutcome::Inserted => "store.upserts.inserted",
                UpsertOutcome::Updated => "store.upserts.updated",
                UpsertOutcome::Unchanged => "store.upserts.unchanged",
            };
            gs_obs::counter(label, 1);
            gs_obs::gauge(&format!("store.shard{}.records", shard.id()), shard.len() as f64);
        }
        if self.config.compact_after_ops > 0
            && outcome != UpsertOutcome::Unchanged
            && shard.ops_since_compact() >= self.config.compact_after_ops
        {
            self.compact_shard(shard)?;
        }
        Ok(outcome)
    }

    fn compact_shard(&self, shard: &Shard) -> io::Result<CompactionStats> {
        let span = gs_obs::span("store.compact.shard");
        let stats = shard.compact()?;
        drop(span);
        if gs_obs::enabled() {
            gs_obs::counter("store.compactions", 1);
            gs_obs::counter(
                "store.compact.bytes_reclaimed",
                stats.bytes_before.saturating_sub(stats.bytes_after),
            );
            gs_obs::gauge(
                &format!("store.shard{}.wal_bytes", stats.shard),
                stats.bytes_after as f64,
            );
        }
        Ok(stats)
    }

    /// Compacts every shard, fanning out across the gs-par pool. Each
    /// shard's log shrinks to its point-in-time snapshot (one op per live
    /// record).
    pub fn compact_all(&self) -> io::Result<Vec<CompactionStats>> {
        let span = gs_obs::span("store.compact");
        let results =
            gs_par::map_collect(self.shards.len(), |i| self.compact_shard(&self.shards[i]));
        drop(span);
        results.into_iter().collect()
    }

    /// Forces all unsynced WAL appends to disk.
    pub fn sync_all(&self) -> io::Result<()> {
        for shard in self.shards.iter() {
            shard.sync()?;
        }
        Ok(())
    }

    /// Live record count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total WAL bytes across shards (0 when ephemeral).
    pub fn wal_bytes(&self) -> u64 {
        self.shards.iter().map(Shard::wal_bytes).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Directory backing this store, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// A detached reader with lock-free steady-state access. Clone-cheap;
    /// give every reader thread its own.
    pub fn reader(&self) -> StoreReader {
        StoreReader {
            shards: Arc::clone(&self.shards),
            handles: vec![ReadHandle::new(); self.shards.len()],
        }
    }

    /// Starts a background thread that sweeps shards every `interval` and
    /// compacts any whose log holds at least `compact_after_ops` new ops
    /// (the config value; the sweep is a no-op when auto-compaction is
    /// disabled). Returns a handle that stops the thread on drop.
    pub fn spawn_compactor(&self, interval: Duration) -> CompactorHandle {
        let shards = Arc::clone(&self.shards);
        let threshold = self.config.compact_after_ops;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("gs-store-compactor".into())
            .spawn(move || {
                // ordering: Relaxed — `stop` is a pure flag with no payload
                // handed across it; the shard data the sweep touches is
                // synchronized by each shard's own locks, and thread::join
                // in `stop_and_join` orders everything at shutdown.
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if threshold == 0 || stop2.load(Ordering::Relaxed) {
                        continue;
                    }
                    for shard in shards.iter() {
                        if shard.ops_since_compact() >= threshold {
                            let span = gs_obs::span("store.compact.shard");
                            if shard.compact().is_ok() {
                                gs_obs::counter("store.compactions", 1);
                            }
                            drop(span);
                        }
                    }
                }
            })
            .expect("spawn compactor thread");
        CompactorHandle { stop, join: Some(join) }
    }
}

/// Stops the background compactor when dropped.
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Signals the thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ordering: Relaxed — see the compactor loop: the flag carries no
        // payload and the join below is the real synchronization point.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A per-thread reader over the store's shard views. Steady-state queries
/// take no locks: each call does one atomic epoch load per shard touched
/// and refreshes its cached `Arc<ShardView>` only when the epoch moved.
#[derive(Clone)]
pub struct StoreReader {
    shards: Arc<Vec<Shard>>,
    handles: Vec<ReadHandle>,
}

impl std::fmt::Debug for StoreReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreReader").field("shards", &self.shards.len()).finish()
    }
}

impl StoreReader {
    fn shard_index(&self, company: &str) -> usize {
        (fnv1a64(company.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Live record count in the snapshot this reader currently sees.
    pub fn len(&mut self) -> usize {
        (0..self.shards.len()).map(|i| self.handles[i].view(self.shards[i].cell()).len()).sum()
    }

    /// Whether the visible snapshot is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// All records of one company (touches exactly one shard), in stable
    /// first-insert order.
    pub fn by_company(&mut self, company: &str) -> Vec<ObjectiveRecord> {
        let i = self.shard_index(company);
        let view = self.handles[i].view(self.shards[i].cell());
        let mut rows = Vec::new();
        view.for_company(company, |s| rows.push((s.seq, s.record.clone())));
        rows.sort_by_key(|(seq, _)| *seq);
        rows.into_iter().map(|(_, r)| r).collect()
    }

    /// Every record in the store, ordered by (shard, first-insert seq).
    pub fn records(&mut self) -> Vec<ObjectiveRecord> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let view = self.handles[i].view(self.shards[i].cell());
            let mut rows = Vec::new();
            view.for_each(|s| rows.push((s.seq, s.record.clone())));
            rows.sort_by_key(|(seq, _)| *seq);
            out.extend(rows.into_iter().map(|(_, r)| r));
        }
        out
    }

    /// Objectives with deadline years in `[from, to]` — the monitoring
    /// query, answered from the per-shard deadline indexes.
    pub fn deadlines_between(&mut self, from: i64, to: i64) -> Vec<ObjectiveRecord> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let view = self.handles[i].view(self.shards[i].cell());
            let mut rows = Vec::new();
            view.for_deadline_range(from, to, |s| rows.push((s.seq, s.record.clone())));
            rows.sort_by_key(|(seq, _)| *seq);
            out.extend(rows.into_iter().map(|(_, r)| r));
        }
        out
    }

    /// The top `k` objectives of a company by detection score, completeness
    /// breaking ties (mirrors `ObjectiveStore::top_objectives`).
    pub fn top_objectives(&mut self, company: &str, k: usize) -> Vec<ObjectiveRecord> {
        let mut records = self.by_company(company);
        records.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.completeness().cmp(&a.completeness()))
        });
        records.truncate(k);
        records
    }

    /// Objective counts per company, sorted by company name.
    pub fn counts_by_company(&mut self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for i in 0..self.shards.len() {
            let view = self.handles[i].view(self.shards[i].cell());
            view.for_each(|s| *counts.entry(s.record.company.clone()).or_default() += 1);
        }
        counts.into_iter().collect()
    }

    /// Mean completeness (fields per record) per company.
    pub fn specificity_by_company(&mut self) -> Vec<(String, f64)> {
        let mut sums: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for i in 0..self.shards.len() {
            let view = self.handles[i].view(self.shards[i].cell());
            view.for_each(|s| {
                let entry = sums.entry(s.record.company.clone()).or_default();
                entry.0 += s.record.completeness();
                entry.1 += 1;
            });
        }
        sums.into_iter()
            .map(|(company, (sum, n))| (company, sum as f64 / n.max(1) as f64))
            .collect()
    }

    /// Exports the visible snapshot as a JSON array.
    pub fn export_json(&mut self) -> String {
        codec::records_to_json(&self.records())
    }
}

/// Anything the extraction pipeline can stream upserts into. Implemented by
/// [`ObjectiveDb`] and by the legacy in-memory `ObjectiveStore`, so
/// `gs_pipeline::process_corpus` works against either.
pub trait ObjectiveSink: Sync {
    /// Upserts one extracted record; reports what happened.
    fn upsert_record(&self, record: &ObjectiveRecord) -> io::Result<UpsertOutcome>;

    /// Live record count.
    fn record_count(&self) -> usize;
}

impl ObjectiveSink for ObjectiveDb {
    fn upsert_record(&self, record: &ObjectiveRecord) -> io::Result<UpsertOutcome> {
        self.upsert(record)
    }

    fn record_count(&self) -> usize {
        self.len()
    }
}

impl ObjectiveSink for crate::ObjectiveStore {
    fn upsert_record(&self, record: &ObjectiveRecord) -> io::Result<UpsertOutcome> {
        Ok(self.upsert(record).1)
    }

    fn record_count(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("gs-db-test-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn record(
        company: &str,
        objective: &str,
        deadline: Option<&str>,
        score: f64,
    ) -> ObjectiveRecord {
        ObjectiveRecord {
            company: company.into(),
            document: "report.txt".into(),
            objective: objective.into(),
            action: Some("Reduce".into()),
            amount: None,
            qualifier: None,
            baseline: None,
            deadline: deadline.map(str::to_string),
            score,
            ..ObjectiveRecord::default()
        }
    }

    #[test]
    fn routes_by_company_and_answers_queries() {
        let db = ObjectiveDb::ephemeral(StoreConfig { shards: 4, ..StoreConfig::default() });
        for c in ["Acme", "Bcme", "Ccme"] {
            for i in 0..3 {
                let r = record(c, &format!("objective {i}"), Some("2030"), 0.5 + i as f64 * 0.1);
                assert_eq!(db.upsert(&r).unwrap(), UpsertOutcome::Inserted);
            }
        }
        assert_eq!(db.len(), 9);
        let mut reader = db.reader();
        assert_eq!(reader.len(), 9);
        assert_eq!(reader.by_company("Acme").len(), 3);
        assert_eq!(reader.by_company("Nobody").len(), 0);
        assert_eq!(reader.deadlines_between(2029, 2031).len(), 9);
        assert_eq!(reader.deadlines_between(2031, 2040).len(), 0);
        let top = reader.top_objectives("Bcme", 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(
            reader.counts_by_company(),
            vec![("Acme".into(), 3), ("Bcme".into(), 3), ("Ccme".into(), 3)]
        );
    }

    #[test]
    fn reopen_restores_every_shard() {
        let dir = tmp_dir("reopen");
        let config = StoreConfig { shards: 4, ..StoreConfig::default() };
        {
            let (db, report) = ObjectiveDb::open(&dir, config).expect("open");
            assert_eq!(report.records, 0);
            for i in 0..20 {
                db.upsert(&record(&format!("Company {i}"), "objective", None, 0.5)).unwrap();
            }
        }
        let (db, report) = ObjectiveDb::open(&dir, config).expect("reopen");
        assert_eq!(report.records, 20);
        assert_eq!(report.frames(), 20);
        assert_eq!(report.torn_tails(), 0);
        assert_eq!(db.len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_shard_count_wins_over_config() {
        let dir = tmp_dir("meta");
        {
            let (db, _) =
                ObjectiveDb::open(&dir, StoreConfig { shards: 3, ..StoreConfig::default() })
                    .expect("open");
            db.upsert(&record("Acme", "objective", None, 0.5)).unwrap();
        }
        // Reopening with a different configured count must keep 3 shards.
        let (db, _) = ObjectiveDb::open(&dir, StoreConfig { shards: 16, ..StoreConfig::default() })
            .expect("reopen");
        assert_eq!(db.shard_count(), 3);
        assert_eq!(db.reader().by_company("Acme").len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_bounds_log_growth() {
        let dir = tmp_dir("autocompact");
        let config = StoreConfig { shards: 1, compact_after_ops: 10, ..StoreConfig::default() };
        let (db, _) = ObjectiveDb::open(&dir, config).expect("open");
        // One identity updated many times: the log would hold 100 ops
        // without compaction, but auto-compaction folds it back to 1 live
        // record every 10 ops.
        for i in 0..100 {
            let mut r = record("Acme", "the objective", None, 0.5);
            r.amount = Some(format!("{i}%"));
            db.upsert(&r).unwrap();
        }
        assert_eq!(db.len(), 1);
        let (db2, report) = ObjectiveDb::open(&dir, config).expect("reopen");
        assert!(report.frames() <= 10, "log must stay compacted, found {} frames", report.frames());
        assert_eq!(db2.reader().by_company("Acme")[0].amount.as_deref(), Some("99%"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_all_then_reopen_is_identical() {
        let dir = tmp_dir("compactall");
        let config = StoreConfig { shards: 4, ..StoreConfig::default() };
        let (db, _) = ObjectiveDb::open(&dir, config).expect("open");
        for i in 0..30 {
            db.upsert(&record(&format!("C{}", i % 5), &format!("obj {i}"), Some("2030"), 0.5))
                .unwrap();
        }
        let before = db.reader().export_json();
        let stats = db.compact_all().expect("compact");
        assert_eq!(stats.len(), 4);
        assert_eq!(db.reader().export_json(), before, "compaction must not change state");
        drop(db);
        let (db2, _) = ObjectiveDb::open(&dir, config).expect("reopen");
        assert_eq!(db2.reader().export_json(), before, "recovery must not change state");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
