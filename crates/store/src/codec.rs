//! Text encoding of store records and log operations.
//!
//! Following the repo's text-serialization discipline (see
//! `gs_tensor::serialize`), everything the store persists is line-oriented,
//! human-inspectable text with bit-exact floating-point round-trips: the
//! detection score is written as the hex of its `f64` bit pattern, so NaNs
//! and signed zeros survive a save/load cycle and recovered state can be
//! compared byte-for-byte against an uninterrupted run.
//!
//! A record is one line of tab-separated fields with `\\`, `\t`, `\n`,
//! `\r` escapes. Optional detail fields carry a one-byte presence marker
//! (`-` absent, `=` present) so "no deadline" and "empty deadline" cannot
//! be confused. A log operation wraps a record with its replay metadata:
//! `u <seq> <version> <record fields…>`.

use crate::hash::Fnv1a64;
use crate::objective_store::ObjectiveRecord;

/// Escapes one field for the tab-separated line format.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
}

/// Reverses [`escape_into`]. Fails on a dangling or unknown escape.
fn unescape(s: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(CodecError::BadEscape),
        }
    }
    Ok(out)
}

/// Why a persisted line failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Wrong number of tab-separated fields.
    BadArity,
    /// Dangling or unknown backslash escape.
    BadEscape,
    /// Optional field without a `-`/`=` presence marker.
    BadMarker,
    /// Score field is not 16 hex digits.
    BadScore,
    /// Sequence or version field is not a decimal integer.
    BadMeta,
    /// Unknown operation tag.
    BadOp,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            CodecError::BadArity => "wrong field count",
            CodecError::BadEscape => "bad escape sequence",
            CodecError::BadMarker => "missing option presence marker",
            CodecError::BadScore => "malformed score bits",
            CodecError::BadMeta => "malformed seq/version",
            CodecError::BadOp => "unknown op tag",
        };
        write!(f, "store codec: {what}")
    }
}

impl std::error::Error for CodecError {}

fn opt_into(out: &mut String, field: &Option<String>) {
    match field.as_deref() {
        // Empty extractions carry no information; normalize them to absent
        // so content hashes and equality cannot distinguish `Some("")`.
        None | Some("") => out.push('-'),
        Some(s) => {
            out.push('=');
            escape_into(out, s);
        }
    }
}

fn opt_from(field: &str) -> Result<Option<String>, CodecError> {
    match field.as_bytes().first() {
        Some(b'-') if field.len() == 1 => Ok(None),
        Some(b'=') => Ok(Some(unescape(&field[1..])?)),
        _ => Err(CodecError::BadMarker),
    }
}

/// Number of tab-separated fields in an encoded record (v2, with the four
/// ingestion-provenance fields after the score).
const RECORD_FIELDS: usize = 13;

/// Field count of pre-provenance records; still accepted on decode so logs
/// and saves written before the ingest front-end replay cleanly.
const LEGACY_RECORD_FIELDS: usize = 9;

/// Encodes a record as one line (no trailing newline).
pub fn encode_record(record: &ObjectiveRecord) -> String {
    let mut out = String::with_capacity(96);
    encode_record_into(&mut out, record);
    out
}

fn encode_record_into(out: &mut String, record: &ObjectiveRecord) {
    escape_into(out, &record.company);
    out.push('\t');
    escape_into(out, &record.document);
    out.push('\t');
    escape_into(out, &record.objective);
    for field in
        [&record.action, &record.amount, &record.qualifier, &record.baseline, &record.deadline]
    {
        out.push('\t');
        opt_into(out, field);
    }
    out.push('\t');
    out.push_str(&format!("{:016x}", record.score.to_bits()));
    for field in
        [&record.section_id, &record.section_path, &record.block_kind, &record.source_range]
    {
        out.push('\t');
        opt_into(out, field);
    }
}

/// Decodes one [`encode_record`] line.
pub fn decode_record(line: &str) -> Result<ObjectiveRecord, CodecError> {
    let fields: Vec<&str> = line.split('\t').collect();
    decode_record_fields(&fields)
}

fn decode_record_fields(fields: &[&str]) -> Result<ObjectiveRecord, CodecError> {
    if fields.len() != RECORD_FIELDS && fields.len() != LEGACY_RECORD_FIELDS {
        return Err(CodecError::BadArity);
    }
    let score_bits =
        u64::from_str_radix(fields[8], 16).map_err(|_| CodecError::BadScore).and_then(|bits| {
            if fields[8].len() == 16 {
                Ok(bits)
            } else {
                Err(CodecError::BadScore)
            }
        })?;
    let prov = |i: usize| match fields.get(i) {
        Some(f) => opt_from(f),
        None => Ok(None), // legacy 9-field record: no provenance
    };
    Ok(ObjectiveRecord {
        company: unescape(fields[0])?,
        document: unescape(fields[1])?,
        objective: unescape(fields[2])?,
        action: opt_from(fields[3])?,
        amount: opt_from(fields[4])?,
        qualifier: opt_from(fields[5])?,
        baseline: opt_from(fields[6])?,
        deadline: opt_from(fields[7])?,
        score: f64::from_bits(score_bits),
        section_id: prov(9)?,
        section_path: prov(10)?,
        block_kind: prov(11)?,
        source_range: prov(12)?,
    })
}

/// One replayable log operation. The store currently only logs whole-record
/// upserts (merges are resolved *before* logging, so replay is a blind
/// last-write-wins scan), but the tag byte leaves room for more.
#[derive(Clone, Debug, PartialEq)]
pub enum LogOp {
    /// Upsert of the full (already merged) record under a stable first-insert
    /// sequence number and a monotonically increasing version.
    Upsert {
        /// First-insert order within the shard; stable across merges, so
        /// replay and compaction preserve insertion order.
        seq: u64,
        /// Merge count for this identity, starting at 1.
        version: u32,
        /// The full record as of this operation.
        record: ObjectiveRecord,
    },
}

/// Encodes an operation as one line (no trailing newline).
pub fn encode_op(op: &LogOp) -> String {
    match op {
        LogOp::Upsert { seq, version, record } => {
            let mut out = String::with_capacity(112);
            out.push_str("u\t");
            out.push_str(&seq.to_string());
            out.push('\t');
            out.push_str(&version.to_string());
            out.push('\t');
            encode_record_into(&mut out, record);
            out
        }
    }
}

/// Decodes one [`encode_op`] line.
pub fn decode_op(line: &str) -> Result<LogOp, CodecError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.first() != Some(&"u") {
        return Err(CodecError::BadOp);
    }
    if fields.len() != RECORD_FIELDS + 3 && fields.len() != LEGACY_RECORD_FIELDS + 3 {
        return Err(CodecError::BadArity);
    }
    let seq: u64 = fields[1].parse().map_err(|_| CodecError::BadMeta)?;
    let version: u32 = fields[2].parse().map_err(|_| CodecError::BadMeta)?;
    let record = decode_record_fields(&fields[3..])?;
    Ok(LogOp::Upsert { seq, version, record })
}

/// The upsert identity key: company + objective text. Records of the same
/// objective from different documents/re-runs merge under one key.
pub fn identity_key(company: &str, objective: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(company.as_bytes());
    h.sep();
    h.write(objective.as_bytes());
    h.finish()
}

/// Full-content hash of a record: every field, with the score folded in as
/// raw bits (so a NaN score hashes stably instead of poisoning equality).
pub fn content_hash(record: &ObjectiveRecord) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(record.company.as_bytes());
    h.sep();
    h.write(record.document.as_bytes());
    h.sep();
    h.write(record.objective.as_bytes());
    for field in [
        &record.action,
        &record.amount,
        &record.qualifier,
        &record.baseline,
        &record.deadline,
        &record.section_id,
        &record.section_path,
        &record.block_kind,
        &record.source_range,
    ] {
        h.sep();
        // Normalize Some("") to None, matching the codec.
        if let Some(s) = field.as_deref().filter(|s| !s.is_empty()) {
            h.write(b"=");
            h.write(s.as_bytes());
        } else {
            h.write(b"-");
        }
    }
    h.sep();
    h.write(&record.score.to_bits().to_le_bytes());
    h.finish()
}

/// Escapes a string for inclusion in a JSON document (used by the export
/// paths now that the store is std-only).
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_opt_into(out: &mut String, field: &Option<String>) {
    match field {
        None => out.push_str("null"),
        Some(s) => {
            out.push('"');
            json_escape_into(out, s);
            out.push('"');
        }
    }
}

/// Renders one record as a JSON object (the shape `export_json` emits).
pub fn record_to_json(record: &ObjectiveRecord) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"company\":\"");
    json_escape_into(&mut out, &record.company);
    out.push_str("\",\"document\":\"");
    json_escape_into(&mut out, &record.document);
    out.push_str("\",\"objective\":\"");
    json_escape_into(&mut out, &record.objective);
    out.push('"');
    for (name, field) in [
        ("action", &record.action),
        ("amount", &record.amount),
        ("qualifier", &record.qualifier),
        ("baseline", &record.baseline),
        ("deadline", &record.deadline),
        ("section_id", &record.section_id),
        ("section_path", &record.section_path),
        ("block_kind", &record.block_kind),
        ("source_range", &record.source_range),
    ] {
        out.push_str(",\"");
        out.push_str(name);
        out.push_str("\":");
        json_opt_into(&mut out, field);
    }
    out.push_str(",\"score\":");
    if record.score.is_finite() {
        out.push_str(&format!("{}", record.score));
    } else {
        // JSON has no NaN/Inf literal; exports degrade to null rather than
        // emitting an unparsable document.
        out.push_str("null");
    }
    out.push('}');
    out
}

/// Renders records as a pretty-printed JSON array, matching the layout the
/// serde-based exporter produced (one record object per block).
pub fn records_to_json(records: &[ObjectiveRecord]) -> String {
    if records.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::with_capacity(records.len() * 170);
    out.push('[');
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&record_to_json(record));
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectiveRecord {
        ObjectiveRecord {
            company: "Acme\tCorp".into(),
            document: "ESG\n2026".into(),
            objective: "Cut emissions by 50% by 2030 \\ net-zero".into(),
            action: Some("Cut".into()),
            amount: Some("50%".into()),
            qualifier: None,
            baseline: Some(String::new()),
            deadline: Some("2030".into()),
            score: 0.875,
            section_id: Some("00deadbeef001234".into()),
            section_path: Some("Report > Climate > Targets".into()),
            block_kind: Some("list_item".into()),
            source_range: Some("120..156".into()),
        }
    }

    #[test]
    fn record_roundtrips_with_escapes() {
        let record = sample();
        let line = encode_record(&record);
        assert!(!line.contains('\n'), "encoded record must be one line");
        let back = decode_record(&line).expect("decode");
        assert_eq!(back.company, record.company);
        assert_eq!(back.document, record.document);
        assert_eq!(back.objective, record.objective);
        // Some("") normalizes to None.
        assert_eq!(back.baseline, None);
        assert_eq!(back.deadline, record.deadline);
        assert_eq!(back.score.to_bits(), record.score.to_bits());
        assert_eq!(back.section_path, record.section_path);
        assert_eq!(back.source_range, record.source_range);
    }

    #[test]
    fn legacy_nine_field_records_decode_with_empty_provenance() {
        // A line written before the ingest front-end existed.
        let legacy = "Acme\tdoc\tCut emissions.\t=Cut\t-\t-\t-\t=2030\t3fec000000000000";
        let record = decode_record(legacy).expect("legacy decode");
        assert_eq!(record.company, "Acme");
        assert_eq!(record.score, 0.875);
        assert_eq!(record.deadline.as_deref(), Some("2030"));
        assert_eq!(record.section_id, None);
        assert_eq!(record.section_path, None);
        assert_eq!(record.block_kind, None);
        assert_eq!(record.source_range, None);
        // Legacy ops replay too.
        let op = format!("u\t4\t2\t{legacy}");
        let LogOp::Upsert { seq, version, record } = decode_op(&op).expect("legacy op");
        assert_eq!((seq, version), (4, 2));
        assert_eq!(record.objective, "Cut emissions.");
        // Re-encoding writes the modern 13-field form.
        assert_eq!(encode_record(&record).split('\t').count(), 13);
    }

    #[test]
    fn nan_and_negative_zero_scores_roundtrip_bit_exactly() {
        for score in [f64::NAN, -0.0, f64::INFINITY, 1.0e-300] {
            let mut record = sample();
            record.score = score;
            let back = decode_record(&encode_record(&record)).expect("decode");
            assert_eq!(back.score.to_bits(), score.to_bits());
        }
    }

    #[test]
    fn op_roundtrips() {
        let op = LogOp::Upsert { seq: 17, version: 3, record: sample() };
        let back = decode_op(&encode_op(&op)).expect("decode op");
        assert_eq!(back, {
            let LogOp::Upsert { seq, version, mut record } = op;
            record.baseline = None; // Some("") normalization
            LogOp::Upsert { seq, version, record }
        });
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "u",
            "u\t1",
            "u\tx\t1\ta\tb\tc\t-\t-\t-\t-\t-\t0000000000000000",
            "u\t1\t1\ta\tb\tc\t-\t-\t-\t-\t-\tzz",
            "u\t1\t1\ta\tb\tc\t?\t-\t-\t-\t-\t0000000000000000",
            "u\t1\t1\ta\tb\tc\t-\t-\t-\t-\t-\t00",
            "u\t1\t1\ta\\x\tb\tc\t-\t-\t-\t-\t-\t0000000000000000",
            "w\t1\t1\ta\tb\tc\t-\t-\t-\t-\t-\t0000000000000000",
        ] {
            assert!(decode_op(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn identity_key_separates_company_from_objective() {
        assert_ne!(identity_key("AB", "C"), identity_key("A", "BC"));
        assert_eq!(identity_key("Acme", "x"), identity_key("Acme", "x"));
    }

    #[test]
    fn content_hash_is_stable_for_nan_scores_and_ignores_empty_some() {
        let mut a = sample();
        a.score = f64::NAN;
        let b = a.clone();
        assert_eq!(content_hash(&a), content_hash(&b));
        a.baseline = None; // was Some("")
        assert_eq!(content_hash(&a), content_hash(&b));
        a.deadline = None;
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn json_rendering_escapes_and_handles_null() {
        let mut record = sample();
        record.score = f64::NAN;
        let json = record_to_json(&record);
        assert!(json.contains("\"company\":\"Acme\\tCorp\""));
        assert!(json.contains("\"qualifier\":null"));
        assert!(json.contains("\"score\":null"));
        let arr = records_to_json(&[]);
        assert_eq!(arr, "[]");
    }
}
