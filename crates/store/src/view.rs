//! Immutable shard views and the epoch/swap publication scheme that gives
//! readers a lock-free steady state.
//!
//! ## Shape
//!
//! A [`ShardView`] is a point-in-time image of one shard, made of:
//!
//! - a **base generation**: records folded up to the last fold point, with
//!   prebuilt company and deadline-year indexes, all behind `Arc`s so a
//!   new view reuses them at pointer cost; and
//! - a small **delta**: records upserted since that fold, scanned linearly
//!   on reads (bounded by the fold threshold, so reads stay O(result +
//!   delta)).
//!
//! The writer folds the delta into a fresh base every `fold_threshold`
//! upserts, which keeps per-upsert publication cost O(delta) instead of
//! O(shard) — the same memtable/L0 economics as an LSM tree.
//!
//! ## Epoch/swap
//!
//! Views are published through an [`EpochCell`]: the writer stores the new
//! `Arc<ShardView>` under a mutex, then bumps an atomic epoch. A
//! [`ReadHandle`] caches the last view it saw together with the epoch; on
//! every read it does **one atomic load** — only when the epoch moved does
//! it take the mutex to refresh the cache. Steady-state reads therefore
//! never contend with the writer or with each other, and a reader always
//! sees a fully consistent immutable snapshot (possibly one publish old).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use gs_race::sync::{AtomicU64, Mutex, Ordering, Probe};

use crate::objective_store::ObjectiveRecord;
use crate::value::Value;

/// One live record inside a shard, with its replay metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRecord {
    /// Identity key: hash of (company, objective).
    pub key: u64,
    /// First-insert order within the shard; stable across merges.
    pub seq: u64,
    /// Number of merges applied to this identity (1 = never merged).
    pub version: u32,
    /// The record content as of the latest merge.
    pub record: ObjectiveRecord,
    /// Year parsed out of the deadline field, for range queries.
    pub deadline_year: Option<i64>,
}

impl StoredRecord {
    /// Builds the stored form, deriving the deadline-year column.
    pub fn new(key: u64, seq: u64, version: u32, record: ObjectiveRecord) -> Self {
        let deadline_year = record.deadline.as_deref().and_then(Value::parse_year);
        StoredRecord { key, seq, version, record, deadline_year }
    }
}

/// A folded, fully indexed set of records (the view's "base").
#[derive(Clone, Debug, Default)]
pub struct Generation {
    /// Records in seq order.
    pub records: Arc<Vec<StoredRecord>>,
    /// company -> indexes into `records`.
    by_company: Arc<HashMap<String, Vec<u32>>>,
    /// deadline year -> indexes into `records`.
    by_deadline: Arc<BTreeMap<i64, Vec<u32>>>,
}

impl Generation {
    /// Builds a generation (and its indexes) from seq-ordered records.
    pub fn build(records: Vec<StoredRecord>) -> Self {
        let mut by_company: HashMap<String, Vec<u32>> = HashMap::new();
        let mut by_deadline: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            by_company.entry(r.record.company.clone()).or_default().push(i as u32);
            if let Some(year) = r.deadline_year {
                by_deadline.entry(year).or_default().push(i as u32);
            }
        }
        Generation {
            records: Arc::new(records),
            by_company: Arc::new(by_company),
            by_deadline: Arc::new(by_deadline),
        }
    }
}

/// An immutable point-in-time view of one shard.
#[derive(Clone, Debug, Default)]
pub struct ShardView {
    base: Generation,
    /// Upserts since the last fold, seq-ordered, at most one per key.
    delta: Arc<Vec<StoredRecord>>,
    /// Keys present in `delta` (these supersede any base entry).
    delta_keys: Arc<HashMap<u64, u32>>,
    /// Cached live-record count.
    live: usize,
}

impl ShardView {
    /// Builds a view from a base generation and the current delta.
    pub fn new(base: Generation, delta: Vec<StoredRecord>) -> Self {
        let delta_keys: HashMap<u64, u32> =
            delta.iter().enumerate().map(|(i, r)| (r.key, i as u32)).collect();
        let superseded = base.records.iter().filter(|r| delta_keys.contains_key(&r.key)).count();
        let live = base.records.len() - superseded + delta.len();
        ShardView { base, delta: Arc::new(delta), delta_keys: Arc::new(delta_keys), live }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Size of the unfolded delta (diagnostics).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    fn base_is_live(&self, r: &StoredRecord) -> bool {
        !self.delta_keys.contains_key(&r.key)
    }

    /// Visits every live record. Order is base-seq then delta-seq; callers
    /// needing global seq order sort afterwards.
    pub fn for_each(&self, mut f: impl FnMut(&StoredRecord)) {
        for r in self.base.records.iter() {
            if self.base_is_live(r) {
                f(r);
            }
        }
        for r in self.delta.iter() {
            f(r);
        }
    }

    /// Visits every live record of one company.
    pub fn for_company(&self, company: &str, mut f: impl FnMut(&StoredRecord)) {
        if let Some(ids) = self.base.by_company.get(company) {
            for &i in ids {
                let r = &self.base.records[i as usize];
                if self.base_is_live(r) {
                    f(r);
                }
            }
        }
        for r in self.delta.iter() {
            if r.record.company == company {
                f(r);
            }
        }
    }

    /// Visits every live record whose deadline year is in `[lo, hi]`.
    pub fn for_deadline_range(&self, lo: i64, hi: i64, mut f: impl FnMut(&StoredRecord)) {
        for (_, ids) in self.base.by_deadline.range(lo..=hi) {
            for &i in ids {
                let r = &self.base.records[i as usize];
                if self.base_is_live(r) {
                    f(r);
                }
            }
        }
        for r in self.delta.iter() {
            if r.deadline_year.is_some_and(|y| lo <= y && y <= hi) {
                f(r);
            }
        }
    }

    /// Looks up one record by identity key.
    pub fn get(&self, key: u64) -> Option<&StoredRecord> {
        if let Some(&i) = self.delta_keys.get(&key) {
            return Some(&self.delta[i as usize]);
        }
        // Base lookups scan the company bucket via the delta-free path only
        // when no index exists; identity lookups on the base are rare (the
        // writer keeps its own authoritative map), so linear search over
        // the base is acceptable here.
        self.base.records.iter().find(|r| r.key == key && self.base_is_live(r))
    }
}

/// Publication cell: writers swap in new views, readers stay lock-free
/// while the epoch is unchanged.
#[derive(Debug, Default)]
pub struct EpochCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<ShardView>>,
    /// Race-detector annotation on the slot hand-off: written on every
    /// publish and read on every load, both under the slot mutex. If the
    /// lock discipline around the slot is ever broken, the live detector
    /// (`GS_RACE=1`) reports these two sites as an unsynchronized
    /// write/read pair. The epoch Release/Acquire contract itself is pinned
    /// deterministically by `gs-race`'s epoch model (`models/epoch.rs`).
    payload: Probe,
}

impl EpochCell {
    /// A cell holding an empty view at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new view: store under the mutex first, then bump the
    /// epoch with `Release` so a reader that observes the new epoch also
    /// observes the new slot value.
    pub fn publish(&self, view: Arc<ShardView>) {
        {
            let mut slot = self.slot.lock();
            self.payload.write("EpochCell.slot");
            *slot = view;
        }
        // ordering: Release — publication edge. A reader that observes the
        // bumped epoch (Acquire in `epoch()`) must also observe the view
        // stored above; Relaxed here would let a lock-free fast path see
        // the new epoch with a stale slot. Must NOT be weakened.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current epoch (one atomic load).
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bump in `publish` so
        // an observed epoch move carries the writer's slot store with it.
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current view (takes the slot mutex briefly).
    pub fn load(&self) -> Arc<ShardView> {
        let slot = self.slot.lock();
        self.payload.read("EpochCell.slot");
        slot.clone()
    }
}

/// A per-reader cache over one [`EpochCell`]: steady-state reads cost one
/// atomic load and touch no lock.
#[derive(Clone, Debug, Default)]
pub struct ReadHandle {
    cached: Arc<ShardView>,
    seen_epoch: u64,
}

impl ReadHandle {
    /// A handle that will refresh on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The freshest published view, refreshing the cache only when the
    /// epoch moved since the last call.
    pub fn view(&mut self, cell: &EpochCell) -> &Arc<ShardView> {
        let epoch = cell.epoch();
        if epoch != self.seen_epoch {
            self.cached = cell.load();
            self.seen_epoch = epoch;
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(company: &str, objective: &str, deadline: Option<&str>) -> ObjectiveRecord {
        ObjectiveRecord {
            company: company.into(),
            document: "doc".into(),
            objective: objective.into(),
            action: None,
            amount: None,
            qualifier: None,
            baseline: None,
            deadline: deadline.map(str::to_string),
            score: 0.5,
            ..ObjectiveRecord::default()
        }
    }

    fn stored(
        key: u64,
        seq: u64,
        company: &str,
        objective: &str,
        dl: Option<&str>,
    ) -> StoredRecord {
        StoredRecord::new(key, seq, 1, record(company, objective, dl))
    }

    #[test]
    fn delta_supersedes_base_and_len_accounts_for_it() {
        let base = Generation::build(vec![
            stored(1, 0, "C1", "a", Some("2030")),
            stored(2, 1, "C2", "b", None),
        ]);
        let mut newer = stored(1, 0, "C1", "a", Some("2031"));
        newer.version = 2;
        let view = ShardView::new(base, vec![newer.clone(), stored(3, 2, "C1", "c", None)]);
        assert_eq!(view.len(), 3);
        let mut seen = Vec::new();
        view.for_company("C1", |r| seen.push((r.key, r.version)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 2), (3, 1)]);
        assert_eq!(view.get(1).map(|r| r.version), Some(2));
        assert_eq!(view.get(2).map(|r| r.version), Some(1));
        assert_eq!(view.get(9), None);
    }

    #[test]
    fn deadline_range_spans_base_and_delta() {
        let base = Generation::build(vec![stored(1, 0, "C1", "a", Some("2030"))]);
        let view = ShardView::new(base, vec![stored(2, 1, "C1", "b", Some("2026"))]);
        let mut years = Vec::new();
        view.for_deadline_range(2025, 2035, |r| years.push(r.deadline_year.unwrap()));
        years.sort_unstable();
        assert_eq!(years, vec![2026, 2030]);
        let mut none = Vec::new();
        view.for_deadline_range(2040, 2050, |r| none.push(r.key));
        assert!(none.is_empty());
    }

    #[test]
    fn epoch_cell_refreshes_handles_only_on_publish() {
        let cell = EpochCell::new();
        let mut handle = ReadHandle::new();
        assert_eq!(handle.view(&cell).len(), 0);
        let before = cell.epoch();
        cell.publish(Arc::new(ShardView::new(
            Generation::build(vec![stored(1, 0, "C1", "a", None)]),
            Vec::new(),
        )));
        assert_eq!(cell.epoch(), before + 1);
        assert_eq!(handle.view(&cell).len(), 1, "handle sees the published view");
        // A second call with no publish reuses the cache.
        assert_eq!(handle.view(&cell).len(), 1);
    }
}
