//! The append-only write-ahead log: length-prefixed, CRC-checksummed text
//! frames in a plain file.
//!
//! ## Format
//!
//! ```text
//! gs-wal v1\n
//! r <len> <crc32-hex>\n<payload bytes>\n
//! r <len> <crc32-hex>\n<payload bytes>\n
//! ...
//! ```
//!
//! `len` is the payload's byte length and the CRC covers exactly the
//! payload. Because every frame is verified on replay, a crash mid-append
//! leaves at most one *torn* frame at the tail: replay stops at the first
//! frame that is short, unparsable, or checksum-mismatched, reports how
//! many clean bytes precede it, and [`Wal::open`] truncates the file back
//! to that boundary so the log is append-ready again. Everything before
//! the torn frame is untouched — recovery is never all-or-nothing.
//!
//! ## Durability
//!
//! [`SyncPolicy`] decides when `fsync` runs: `Always` (every append — the
//! crash-test setting), `EveryN(n)` (group commit), or `OsOnly` (no
//! explicit sync except at [`Wal::sync`]/compaction). Append and fsync
//! latencies land in the `store.wal.append_s` / `store.wal.fsync_s`
//! histograms.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::hash::crc32;

/// First line of every WAL and snapshot file.
pub const WAL_MAGIC: &str = "gs-wal v1";

/// When the log issues `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every append: maximal durability, the crash-safety tests
    /// run under this policy.
    Always,
    /// Sync every `n` appends (group commit); a crash can lose up to the
    /// last `n-1` acknowledged-but-unsynced records.
    EveryN(u32),
    /// Never sync on append; the OS flushes on its own schedule and the
    /// store still syncs explicitly at compaction and close.
    OsOnly,
}

/// What replay found in a log file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Clean frames decoded.
    pub frames: usize,
    /// Bytes covered by clean frames (including the magic line).
    pub clean_bytes: u64,
    /// Bytes discarded after the last clean frame (torn tail, if any).
    pub torn_bytes: u64,
    /// Whether a torn/corrupt tail was found and discarded.
    pub torn_tail: bool,
}

/// An open, append-ready write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    appends_since_sync: u32,
    policy: SyncPolicy,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("policy", &self.policy)
            .finish()
    }
}

/// Reads and verifies every frame in `bytes`, stopping at the first torn or
/// corrupt frame. Returns the payloads and the replay accounting.
pub fn scan_frames(bytes: &[u8]) -> (Vec<String>, ReplayReport) {
    let mut report = ReplayReport::default();
    let mut payloads = Vec::new();
    let magic_line = format!("{WAL_MAGIC}\n");
    if !bytes.starts_with(magic_line.as_bytes()) {
        // A file without the magic is treated as fully torn (e.g. a crash
        // during initial creation left a partial first line).
        report.torn_tail = !bytes.is_empty();
        report.torn_bytes = bytes.len() as u64;
        return (payloads, report);
    }
    let mut pos = magic_line.len();
    report.clean_bytes = pos as u64;
    loop {
        if pos == bytes.len() {
            break; // clean EOF
        }
        let Some(frame) = parse_frame(&bytes[pos..]) else {
            report.torn_tail = true;
            report.torn_bytes = (bytes.len() - pos) as u64;
            break;
        };
        let (payload, frame_len) = frame;
        payloads.push(payload);
        pos += frame_len;
        report.frames += 1;
        report.clean_bytes = pos as u64;
    }
    (payloads, report)
}

/// Parses one frame at the start of `bytes`; `None` if it is incomplete,
/// malformed, or fails its checksum.
fn parse_frame(bytes: &[u8]) -> Option<(String, usize)> {
    let header_end = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..header_end]).ok()?;
    let rest = header.strip_prefix("r ")?;
    let (len_s, crc_s) = rest.split_once(' ')?;
    let len: usize = len_s.parse().ok()?;
    let want_crc = u32::from_str_radix(crc_s, 16).ok()?;
    let payload_start = header_end + 1;
    let payload_end = payload_start.checked_add(len)?;
    // The frame's trailing newline must also be present — a payload cut
    // exactly at its length is still torn.
    if payload_end + 1 > bytes.len() || bytes[payload_end] != b'\n' {
        return None;
    }
    let payload = &bytes[payload_start..payload_end];
    if crc32(payload) != want_crc {
        return None;
    }
    let payload = std::str::from_utf8(payload).ok()?;
    Some((payload.to_string(), payload_end + 1))
}

/// Encodes one frame (header line + payload + newline) into `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &str) {
    let bytes = payload.as_bytes();
    out.extend_from_slice(format!("r {} {:08x}\n", bytes.len(), crc32(bytes)).as_bytes());
    out.extend_from_slice(bytes);
    out.push(b'\n');
}

impl Wal {
    /// Opens (or creates) the log at `path`, replays every clean frame, and
    /// truncates any torn tail so the log is append-ready. Returns the
    /// replayed payloads alongside the handle.
    pub fn open(path: &Path, policy: SyncPolicy) -> io::Result<(Wal, Vec<String>, ReplayReport)> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let started = Instant::now();
        let (payloads, mut report) = scan_frames(&bytes);
        if bytes.is_empty() {
            // Fresh log: write the magic line.
            let mut file = OpenOptions::new().create(true).append(true).open(path)?;
            file.write_all(format!("{WAL_MAGIC}\n").as_bytes())?;
            file.sync_data()?;
            let len = (WAL_MAGIC.len() + 1) as u64;
            report.clean_bytes = len;
            return Ok((
                Wal { file, path: path.to_path_buf(), len, appends_since_sync: 0, policy },
                payloads,
                report,
            ));
        }
        if report.torn_tail {
            if report.clean_bytes == 0 {
                // Not even the magic line survived: start the file over.
                let mut file = File::create(path)?;
                file.write_all(format!("{WAL_MAGIC}\n").as_bytes())?;
                file.sync_data()?;
                report.clean_bytes = (WAL_MAGIC.len() + 1) as u64;
                let len = report.clean_bytes;
                gs_obs::counter("store.wal.torn_tails", 1);
                return Ok((
                    Wal { file, path: path.to_path_buf(), len, appends_since_sync: 0, policy },
                    payloads,
                    report,
                ));
            }
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(report.clean_bytes)?;
            file.sync_data()?;
            gs_obs::counter("store.wal.torn_tails", 1);
        }
        if gs_obs::enabled() {
            gs_obs::observe("store.wal.replay_s", started.elapsed().as_secs_f64());
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let len = report.clean_bytes;
        Ok((
            Wal { file, path: path.to_path_buf(), len, appends_since_sync: 0, policy },
            payloads,
            report,
        ))
    }

    /// Appends one payload as a checksummed frame, syncing per the policy.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        let started = Instant::now();
        let mut frame = Vec::with_capacity(payload.len() + 24);
        frame_into(&mut frame, payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.appends_since_sync += 1;
        let due = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            SyncPolicy::OsOnly => false,
        };
        if due {
            self.sync()?;
        }
        if gs_obs::enabled() {
            gs_obs::counter("store.wal.appends", 1);
            gs_obs::counter("store.wal.bytes", frame.len() as u64);
            gs_obs::observe("store.wal.append_s", started.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Forces an `fsync` of everything appended so far.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        let started = Instant::now();
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        if gs_obs::enabled() {
            gs_obs::counter("store.wal.fsyncs", 1);
            gs_obs::observe("store.wal.fsync_s", started.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Current log size in bytes (magic + clean frames + unsynced appends).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the log's contents with `payloads` (compaction):
    /// writes a fresh file alongside, fsyncs it, renames it over the old
    /// log, and re-opens for append.
    pub fn rewrite(&mut self, payloads: impl Iterator<Item = String>) -> io::Result<()> {
        let tmp_path = self.path.with_extension("log.tmp");
        let mut content: Vec<u8> = format!("{WAL_MAGIC}\n").into_bytes();
        for payload in payloads {
            frame_into(&mut content, &payload);
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&content)?;
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Sync the directory entry so the rename itself is durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.len = content.len() as u64;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("gs-wal-test-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("shard.log");
        let payloads = ["first", "second with\ttab-escaped text", "third"];
        {
            let (mut wal, seen, report) = Wal::open(&path, SyncPolicy::Always).expect("open");
            assert!(seen.is_empty());
            assert!(!report.torn_tail);
            for p in payloads {
                wal.append(p).expect("append");
            }
        }
        let (_, seen, report) = Wal::open(&path, SyncPolicy::Always).expect("reopen");
        assert_eq!(seen, payloads);
        assert_eq!(report.frames, 3);
        assert!(!report.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_at_every_byte_is_truncated_to_the_clean_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("shard.log");
        {
            let (mut wal, _, _) = Wal::open(&path, SyncPolicy::Always).expect("open");
            for i in 0..5 {
                wal.append(&format!("record number {i}")).expect("append");
            }
        }
        let full = std::fs::read(&path).expect("read");
        let magic_len = WAL_MAGIC.len() + 1;
        // Truncate the file at every byte boundary inside the frame stream
        // and verify replay recovers exactly the clean prefix.
        for cut in magic_len..full.len() {
            std::fs::write(&path, &full[..cut]).expect("write cut");
            let (_, seen, report) = Wal::open(&path, SyncPolicy::Always).expect("recover");
            for (i, p) in seen.iter().enumerate() {
                assert_eq!(p, &format!("record number {i}"), "cut at {cut}");
            }
            assert_eq!(report.torn_tail, cut != report.clean_bytes as usize, "cut at {cut}");
            // The recovered log must be append-ready: add one more frame and
            // replay it back.
            {
                let (mut wal, _, _) = Wal::open(&path, SyncPolicy::Always).expect("reopen");
                wal.append("appended after recovery").expect("append");
            }
            let (_, seen2, _) = Wal::open(&path, SyncPolicy::Always).expect("verify");
            assert_eq!(seen2.len(), seen.len() + 1, "cut at {cut}");
            assert_eq!(seen2.last().map(String::as_str), Some("appended after recovery"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_mid_file_frame_discards_the_suffix() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("shard.log");
        {
            let (mut wal, _, _) = Wal::open(&path, SyncPolicy::Always).expect("open");
            for i in 0..4 {
                wal.append(&format!("payload {i}")).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one payload byte in the middle of the file.
        let target = bytes.len() / 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let (_, seen, report) = Wal::open(&path, SyncPolicy::Always).expect("recover");
        assert!(report.torn_tail);
        assert!(seen.len() < 4, "corruption must drop the suffix");
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p, &format!("payload {i}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_recovers_to_empty() {
        let dir = tmp_dir("garbage");
        let path = dir.join("shard.log");
        std::fs::write(&path, b"not a wal at all").expect("write");
        let (mut wal, seen, report) = Wal::open(&path, SyncPolicy::Always).expect("open");
        assert!(seen.is_empty());
        assert!(report.torn_tail);
        wal.append("fresh start").expect("append");
        let (_, seen2, _) = Wal::open(&path, SyncPolicy::Always).expect("reopen");
        assert_eq!(seen2, ["fresh start"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let dir = tmp_dir("rewrite");
        let path = dir.join("shard.log");
        {
            let (mut wal, _, _) = Wal::open(&path, SyncPolicy::Always).expect("open");
            for i in 0..10 {
                wal.append(&format!("op {i}")).expect("append");
            }
            let before = wal.len_bytes();
            wal.rewrite(["live 1".to_string(), "live 2".to_string()].into_iter()).expect("rewrite");
            assert!(wal.len_bytes() < before);
            wal.append("post-compaction").expect("append");
        }
        let (_, seen, _) = Wal::open(&path, SyncPolicy::Always).expect("reopen");
        assert_eq!(seen, ["live 1", "live 2", "post-compaction"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
