//! A columnar table with typed columns, secondary indexes, and predicate
//! queries — the "structured database with predefined fields" the paper's
//! extracted details are stored in (§2.4).

use crate::value::{ColumnType, Value};
use std::collections::{BTreeMap, HashMap};

/// A table schema: ordered, named, typed columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: &[(&str, ColumnType)]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in columns {
            assert!(seen.insert(*name), "duplicate column {name:?}");
        }
        Schema { columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect() }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// The type of column `i`.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.columns[i].1
    }
}

/// Row identifier (insertion order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub usize);

/// Filter predicates over rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Column equals value.
    Eq(String, Value),
    /// Integer column within `[lo, hi]`.
    IntRange(String, i64, i64),
    /// Text column contains a (case-insensitive) substring.
    Contains(String, String),
    /// Column is not null.
    NotNull(String),
    /// Column is null.
    IsNull(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
}

/// A columnar table with optional hash (equality) and btree (range)
/// indexes.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    /// Column-major storage: `columns[c][r]`.
    columns: Vec<Vec<Value>>,
    /// Hash indexes: column -> value -> row ids.
    hash_indexes: HashMap<usize, HashMap<Value, Vec<RowId>>>,
    /// BTree indexes on Int columns: column -> sorted value -> row ids.
    btree_indexes: HashMap<usize, BTreeMap<i64, Vec<RowId>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.num_columns()];
        Table { schema, columns, hash_indexes: HashMap::new(), btree_indexes: HashMap::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a hash index on a column (retroactively covers existing rows).
    pub fn create_hash_index(&mut self, column: &str) {
        let c = self.must_column(column);
        let mut index: HashMap<Value, Vec<RowId>> = HashMap::new();
        for (r, v) in self.columns[c].iter().enumerate() {
            index.entry(v.clone()).or_default().push(RowId(r));
        }
        self.hash_indexes.insert(c, index);
    }

    /// Builds a btree index on an Int column.
    ///
    /// # Panics
    /// Panics if the column is not `Int`.
    pub fn create_btree_index(&mut self, column: &str) {
        let c = self.must_column(column);
        assert_eq!(self.schema.column_type(c), ColumnType::Int, "btree index requires Int column");
        let mut index: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
        for (r, v) in self.columns[c].iter().enumerate() {
            if let Value::Int(i) = v {
                index.entry(*i).or_default().push(RowId(r));
            }
        }
        self.btree_indexes.insert(c, index);
    }

    /// Inserts a row; values must match the schema types (or be null).
    ///
    /// # Panics
    /// Panics on arity or type mismatch.
    pub fn insert(&mut self, row: Vec<Value>) -> RowId {
        assert_eq!(row.len(), self.schema.num_columns(), "row arity mismatch");
        for (c, v) in row.iter().enumerate() {
            if let Some(t) = v.column_type() {
                assert_eq!(
                    t,
                    self.schema.column_type(c),
                    "type mismatch in column {:?}",
                    self.schema.columns[c].0
                );
            }
        }
        let id = RowId(self.len());
        for (c, v) in row.into_iter().enumerate() {
            if let Some(index) = self.hash_indexes.get_mut(&c) {
                index.entry(v.clone()).or_default().push(id);
            }
            if let Some(index) = self.btree_indexes.get_mut(&c) {
                if let Value::Int(i) = &v {
                    index.entry(*i).or_default().push(id);
                }
            }
            self.columns[c].push(v);
        }
        id
    }

    /// Reads a cell.
    pub fn get(&self, row: RowId, column: &str) -> &Value {
        let c = self.must_column(column);
        &self.columns[c][row.0]
    }

    /// Reads a whole row.
    pub fn row(&self, row: RowId) -> Vec<Value> {
        (0..self.schema.num_columns()).map(|c| self.columns[c][row.0].clone()).collect()
    }

    /// Returns the row ids satisfying `predicate`, using indexes for
    /// top-level equality and range predicates when available.
    pub fn select(&self, predicate: &Predicate) -> Vec<RowId> {
        // Index fast paths.
        match predicate {
            Predicate::Eq(col, v) => {
                if let Some(c) = self.schema.column_index(col) {
                    if let Some(index) = self.hash_indexes.get(&c) {
                        return index.get(v).cloned().unwrap_or_default();
                    }
                }
            }
            Predicate::IntRange(col, lo, hi) => {
                // An inverted range is empty everywhere; `BTreeMap::range`
                // would panic on it.
                if lo > hi {
                    return Vec::new();
                }
                if let Some(c) = self.schema.column_index(col) {
                    if let Some(index) = self.btree_indexes.get(&c) {
                        let mut out: Vec<RowId> = index
                            .range(*lo..=*hi)
                            .flat_map(|(_, ids)| ids.iter().copied())
                            .collect();
                        out.sort();
                        return out;
                    }
                }
            }
            _ => {}
        }
        (0..self.len()).map(RowId).filter(|&r| self.eval(predicate, r)).collect()
    }

    /// Counts rows per distinct value of `column` (group-by count).
    pub fn count_by(&self, column: &str) -> Vec<(Value, usize)> {
        let c = self.must_column(column);
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for v in &self.columns[c] {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    fn eval(&self, predicate: &Predicate, row: RowId) -> bool {
        match predicate {
            Predicate::Eq(col, v) => self.get(row, col) == v,
            Predicate::IntRange(col, lo, hi) => {
                self.get(row, col).as_int().is_some_and(|i| *lo <= i && i <= *hi)
            }
            Predicate::Contains(col, needle) => self
                .get(row, col)
                .as_text()
                .is_some_and(|t| t.to_lowercase().contains(&needle.to_lowercase())),
            Predicate::NotNull(col) => !self.get(row, col).is_null(),
            Predicate::IsNull(col) => self.get(row, col).is_null(),
            Predicate::And(a, b) => self.eval(a, row) && self.eval(b, row),
            Predicate::Or(a, b) => self.eval(a, row) || self.eval(b, row),
        }
    }

    fn must_column(&self, name: &str) -> usize {
        self.schema.column_index(name).unwrap_or_else(|| panic!("unknown column {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(with_indexes: bool) -> Table {
        let schema = Schema::new(&[
            ("company", ColumnType::Text),
            ("action", ColumnType::Text),
            ("deadline_year", ColumnType::Int),
        ]);
        let mut t = Table::new(schema);
        if with_indexes {
            t.create_hash_index("company");
            t.create_btree_index("deadline_year");
        }
        t.insert(vec![Value::Text("C1".into()), Value::Text("Reduce".into()), Value::Int(2030)]);
        t.insert(vec![Value::Text("C2".into()), Value::Text("Achieve".into()), Value::Int(2040)]);
        t.insert(vec![Value::Text("C1".into()), Value::Text("Restore".into()), Value::Null]);
        t.insert(vec![Value::Text("C3".into()), Value::Text("Reduce".into()), Value::Int(2025)]);
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = sample_table(false);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(RowId(1), "action"), &Value::Text("Achieve".into()));
        assert_eq!(t.row(RowId(2))[2], Value::Null);
    }

    #[test]
    fn eq_select_with_and_without_index_agree() {
        let plain = sample_table(false);
        let indexed = sample_table(true);
        let p = Predicate::Eq("company".into(), Value::Text("C1".into()));
        assert_eq!(plain.select(&p), indexed.select(&p));
        assert_eq!(plain.select(&p), vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn range_select_uses_btree() {
        let t = sample_table(true);
        let p = Predicate::IntRange("deadline_year".into(), 2026, 2040);
        assert_eq!(t.select(&p), vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn null_handling_in_range() {
        let t = sample_table(false);
        let p = Predicate::IntRange("deadline_year".into(), 1900, 2100);
        assert_eq!(t.select(&p).len(), 3, "null deadline excluded");
    }

    #[test]
    fn contains_is_case_insensitive() {
        let t = sample_table(false);
        let p = Predicate::Contains("action".into(), "redu".into());
        assert_eq!(t.select(&p).len(), 2);
    }

    #[test]
    fn compound_predicates() {
        let t = sample_table(true);
        let p = Predicate::Eq("company".into(), Value::Text("C1".into()))
            .and(Predicate::NotNull("deadline_year".into()));
        assert_eq!(t.select(&p), vec![RowId(0)]);
        let q = Predicate::Eq("company".into(), Value::Text("C2".into()))
            .or(Predicate::Eq("company".into(), Value::Text("C3".into())));
        assert_eq!(t.select(&q).len(), 2);
    }

    #[test]
    fn index_created_after_inserts_covers_them() {
        let mut t = sample_table(false);
        t.create_hash_index("action");
        let p = Predicate::Eq("action".into(), Value::Text("Reduce".into()));
        assert_eq!(t.select(&p).len(), 2);
    }

    #[test]
    fn count_by_groups() {
        let t = sample_table(false);
        let counts = t.count_by("company");
        assert_eq!(
            counts,
            vec![
                (Value::Text("C1".into()), 2),
                (Value::Text("C2".into()), 1),
                (Value::Text("C3".into()), 1)
            ]
        );
    }

    #[test]
    fn predicate_type_mismatches_select_nothing() {
        let t = sample_table(true);
        // Eq with the wrong value type: no row matches, with or without
        // the index fast path.
        assert!(t.select(&Predicate::Eq("company".into(), Value::Int(1))).is_empty());
        assert!(t
            .select(&Predicate::Eq("deadline_year".into(), Value::Text("2030".into())))
            .is_empty());
        // Range over a text column: `as_int` is None for every row.
        assert!(t.select(&Predicate::IntRange("company".into(), 0, i64::MAX)).is_empty());
        // Contains over an int column never matches (and never panics).
        assert!(t.select(&Predicate::Contains("deadline_year".into(), "20".into())).is_empty());
    }

    #[test]
    fn range_corners_with_and_without_index_agree() {
        let plain = sample_table(false);
        let indexed = sample_table(true);
        let cases = [
            (2030, 2030),         // degenerate single-year range
            (2040, 2030),         // inverted: empty
            (i64::MIN, i64::MAX), // everything with a year
            (2041, i64::MAX),     // past the last year
        ];
        for (lo, hi) in cases {
            let p = Predicate::IntRange("deadline_year".into(), lo, hi);
            assert_eq!(plain.select(&p), indexed.select(&p), "range {lo}..={hi}");
        }
        let all = Predicate::IntRange("deadline_year".into(), i64::MIN, i64::MAX);
        assert_eq!(plain.select(&all).len(), 3, "null row stays excluded");
    }

    #[test]
    fn null_semantics_in_predicates() {
        let t = sample_table(false);
        // Eq(Null) matches null cells — it is the flip side of IsNull.
        let eq_null = t.select(&Predicate::Eq("deadline_year".into(), Value::Null));
        assert_eq!(eq_null, t.select(&Predicate::IsNull("deadline_year".into())));
        assert_eq!(eq_null, vec![RowId(2)]);
        // NotNull and IsNull partition the table.
        let not_null = t.select(&Predicate::NotNull("deadline_year".into()));
        assert_eq!(not_null.len() + eq_null.len(), t.len());
        // Contains never matches a null cell, even with an empty needle.
        let p = Predicate::Contains("action".into(), "".into());
        assert_eq!(t.select(&p).len(), 4, "empty needle matches every text cell");
    }

    #[test]
    fn nested_compound_predicates_evaluate_depth_first() {
        let t = sample_table(true);
        // (C1 OR C3) AND has-deadline AND action contains "re"
        let p = Predicate::Eq("company".into(), Value::Text("C1".into()))
            .or(Predicate::Eq("company".into(), Value::Text("C3".into())))
            .and(Predicate::NotNull("deadline_year".into()))
            .and(Predicate::Contains("action".into(), "RE".into()));
        assert_eq!(t.select(&p), vec![RowId(0), RowId(3)]);
        // A contradiction selects nothing regardless of nesting.
        let q = Predicate::IsNull("deadline_year".into())
            .and(Predicate::NotNull("deadline_year".into()));
        assert!(t.select(&q).is_empty());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_rejected() {
        let mut t = sample_table(false);
        t.insert(vec![Value::Int(1), Value::Text("x".into()), Value::Int(2030)]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_rejected() {
        let mut t = sample_table(false);
        t.insert(vec![Value::Null]);
    }
}
