//! Typed cell values for the structured objective database.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// UTF-8 text.
    Text,
    /// 64-bit signed integer (years, counts).
    Int,
}

/// A single cell value. `Null` models absent fields (e.g. an objective
/// without a deadline).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// Absent.
    Null,
    /// Text value.
    Text(String),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// The type this value conforms to, if not null.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Text(_) => Some(ColumnType::Text),
            Value::Int(_) => Some(ColumnType::Int),
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Creates a text value, mapping empty strings to `Null`.
    pub fn text_or_null(s: &str) -> Value {
        if s.is_empty() {
            Value::Null
        } else {
            Value::Text(s.to_string())
        }
    }

    /// Parses a 4-digit year out of a text value ("2040", "FY2030",
    /// "the end of 2025"), if present.
    pub fn parse_year(text: &str) -> Option<i64> {
        let bytes = text.as_bytes();
        for i in 0..bytes.len().saturating_sub(3) {
            let window = &text[i..i + 4];
            if window.chars().all(|c| c.is_ascii_digit())
                && (window.starts_with("19") || window.starts_with("20"))
            {
                // Reject when embedded in a longer digit run.
                let before_digit = i > 0 && bytes[i - 1].is_ascii_digit();
                let after_digit = i + 4 < bytes.len() && bytes[i + 4].is_ascii_digit();
                if !before_digit && !after_digit {
                    return window.parse().ok();
                }
            }
        }
        None
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Text(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_checks() {
        assert_eq!(Value::Text("x".into()).column_type(), Some(ColumnType::Text));
        assert_eq!(Value::Int(5).column_type(), Some(ColumnType::Int));
        assert_eq!(Value::Null.column_type(), None);
    }

    #[test]
    fn empty_text_becomes_null() {
        assert!(Value::text_or_null("").is_null());
        assert_eq!(Value::text_or_null("2040"), Value::Text("2040".into()));
    }

    #[test]
    fn year_parsing() {
        assert_eq!(Value::parse_year("2040"), Some(2040));
        assert_eq!(Value::parse_year("by the end of 2025"), Some(2025));
        assert_eq!(Value::parse_year("FY2030"), Some(2030));
        assert_eq!(Value::parse_year("20400"), None, "embedded in longer run");
        assert_eq!(Value::parse_year("no year here"), None);
        assert_eq!(Value::parse_year("2140"), None, "implausible century");
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::Text("net-zero".into()).to_string(), "net-zero");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "");
    }
}
