//! Typed cell values for the structured objective database.

use std::fmt;

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// UTF-8 text.
    Text,
    /// 64-bit signed integer (years, counts).
    Int,
}

/// A single cell value. `Null` models absent fields (e.g. an objective
/// without a deadline).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Absent.
    Null,
    /// Text value.
    Text(String),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// The type this value conforms to, if not null.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Text(_) => Some(ColumnType::Text),
            Value::Int(_) => Some(ColumnType::Int),
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Creates a text value, mapping empty strings to `Null`.
    pub fn text_or_null(s: &str) -> Value {
        if s.is_empty() {
            Value::Null
        } else {
            Value::Text(s.to_string())
        }
    }

    /// Parses a 4-digit year out of a text value ("2040", "FY2030",
    /// "the end of 2025"), if present. Scans bytes, not char boundaries,
    /// so multibyte text ("2025–2030", "→2040") is safe.
    pub fn parse_year(text: &str) -> Option<i64> {
        let bytes = text.as_bytes();
        for i in 0..bytes.len().saturating_sub(3) {
            let window = &bytes[i..i + 4];
            if window.iter().all(u8::is_ascii_digit)
                && (window.starts_with(b"19") || window.starts_with(b"20"))
            {
                // Reject when embedded in a longer digit run.
                let before_digit = i > 0 && bytes[i - 1].is_ascii_digit();
                let after_digit = i + 4 < bytes.len() && bytes[i + 4].is_ascii_digit();
                if !before_digit && !after_digit {
                    // All-ASCII window, safe to parse as UTF-8.
                    return std::str::from_utf8(window).ok()?.parse().ok();
                }
            }
        }
        None
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Text(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_checks() {
        assert_eq!(Value::Text("x".into()).column_type(), Some(ColumnType::Text));
        assert_eq!(Value::Int(5).column_type(), Some(ColumnType::Int));
        assert_eq!(Value::Null.column_type(), None);
    }

    #[test]
    fn empty_text_becomes_null() {
        assert!(Value::text_or_null("").is_null());
        assert_eq!(Value::text_or_null("2040"), Value::Text("2040".into()));
    }

    #[test]
    fn year_parsing() {
        assert_eq!(Value::parse_year("2040"), Some(2040));
        assert_eq!(Value::parse_year("by the end of 2025"), Some(2025));
        assert_eq!(Value::parse_year("FY2030"), Some(2030));
        assert_eq!(Value::parse_year("20400"), None, "embedded in longer run");
        assert_eq!(Value::parse_year("no year here"), None);
        assert_eq!(Value::parse_year("2140"), None, "implausible century");
    }

    #[test]
    fn year_parsing_corners() {
        // Both centuries; boundaries of the accepted prefixes.
        assert_eq!(Value::parse_year("1999"), Some(1999));
        assert_eq!(Value::parse_year("1899"), None);
        assert_eq!(Value::parse_year("2999"), None, "prefix 29 is not a year century");
        // First plausible match wins in ranges and lists.
        assert_eq!(Value::parse_year("2025-2030"), Some(2025));
        // Too short, empty, digits-only noise.
        assert_eq!(Value::parse_year(""), None);
        assert_eq!(Value::parse_year("203"), None);
        assert_eq!(Value::parse_year("12030"), None, "five-digit run");
        // A rejected embedded run does not hide a later standalone year.
        assert_eq!(Value::parse_year("12030 then 2040"), Some(2040));
    }

    #[test]
    fn year_parsing_survives_multibyte_text() {
        // Byte windows must never split UTF-8 sequences (these used to
        // panic on non-char-boundary slices).
        assert_eq!(Value::parse_year("2025–2030"), Some(2025), "en dash range");
        assert_eq!(Value::parse_year("→2040"), Some(2040));
        assert_eq!(Value::parse_year("année 2035"), Some(2035));
        assert_eq!(Value::parse_year("…→…"), None);
        assert_eq!(Value::parse_year("2030年"), Some(2030));
    }

    #[test]
    fn mixed_type_ordering_is_null_then_text_then_int() {
        // `count_by` and the btree indexes rely on this total order; the
        // variant order is load-bearing, so pin it.
        let mut values = vec![
            Value::Int(-5),
            Value::Text("a".into()),
            Value::Null,
            Value::Int(3),
            Value::Text("Z".into()),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Text("Z".into()),
                Value::Text("a".into()),
                Value::Int(-5),
                Value::Int(3),
            ]
        );
        assert!(Value::Null < Value::Text(String::new()));
        assert!(Value::Text("zzz".into()) < Value::Int(i64::MIN));
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::Text("net-zero".into()).to_string(), "net-zero");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "");
    }
}
