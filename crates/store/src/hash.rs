//! Content hashing and checksums for the log-structured store: FNV-1a for
//! record identity/routing and CRC-32 (IEEE) for log-frame integrity.
//!
//! Both are tiny, dependency-free, and deterministic across platforms —
//! requirements the WAL replay path inherits (a checksum that disagreed
//! between writer and replayer would turn every restart into data loss).

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming 64-bit FNV-1a hasher, used to fold multiple fields into one
/// content hash with explicit separators (so `("ab","c")` and `("a","bc")`
/// hash differently).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a field boundary marker, disambiguating adjacent fields.
    pub fn sep(&mut self) {
        // 0xFF never appears in UTF-8 text, so it cannot collide with data.
        self.write(&[0xFF]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice — the frame
/// checksum in WAL and snapshot files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[usize::from((crc as u8) ^ b)];
    }
    !crc
}

/// Lookup table for the reflected IEEE polynomial `0xEDB88320`, generated
/// at compile time.
static CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn separators_disambiguate_field_boundaries() {
        let mut a = Fnv1a64::new();
        a.write(b"ab");
        a.sep();
        a.write(b"c");
        let mut b = Fnv1a64::new();
        b.write(b"a");
        b.sep();
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical "123456789" check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let payload = b"u\t3\t1\tAcme\tESG 2026\tCut waste by 10% by 2030.";
        let good = crc32(payload);
        let mut corrupted = payload.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
