//! # gs-store
//!
//! The structured database that extracted sustainability-objective details
//! land in (paper §2.4, §5), in two layers:
//!
//! - **[`ObjectiveDb`]** — the production store: a sharded
//!   (hash-by-company), crash-safe, log-structured database. Each shard
//!   keeps an append-only WAL of checksummed text frames, replays it on
//!   open (truncating torn tails), compacts in the background on the
//!   gs-par pool, and publishes immutable views through an epoch/swap
//!   cell so concurrent readers ([`StoreReader`]) run lock-free under
//!   write load. Upserts merge details per (company, objective) and are
//!   idempotent on identical content, so re-processing a report is safe.
//! - **[`ObjectiveStore`]** — the original in-memory columnar engine
//!   (typed columns, hash and btree secondary indexes, predicate queries,
//!   group-by counts), still the lightweight choice for ad-hoc analysis
//!   and the table-engine test bed.
//!
//! Both support the paper's monitoring queries: per-company views,
//! deadline windows, top-k by detection score, and specificity ranking.

#![warn(missing_docs)]

mod codec;
mod db;
mod hash;
mod objective_store;
mod shard;
mod table;
mod value;
mod view;
mod wal;

pub use codec::{
    content_hash, decode_op, decode_record, encode_op, encode_record, identity_key, record_to_json,
    records_to_json, CodecError, LogOp,
};
pub use db::{
    CompactorHandle, ObjectiveDb, ObjectiveSink, RecoveryReport, StoreConfig, StoreReader,
};
pub use hash::{crc32, fnv1a64, Fnv1a64};
pub use objective_store::{ObjectiveRecord, ObjectiveStore};
pub use shard::{CompactionStats, Shard, UpsertOutcome};
pub use table::{Predicate, RowId, Schema, Table};
pub use value::{ColumnType, Value};
pub use view::{EpochCell, Generation, ReadHandle, ShardView, StoredRecord};
pub use wal::{scan_frames, ReplayReport, SyncPolicy, Wal, WAL_MAGIC};
