//! # gs-store
//!
//! The structured database that extracted sustainability-objective details
//! land in (paper §2.4, §5): a small columnar table engine with typed
//! columns, hash and btree secondary indexes, predicate queries, and
//! group-by counts — wrapped by a thread-safe, domain-level
//! [`ObjectiveStore`] supporting the paper's monitoring queries (per-company
//! views, deadline windows, top-k by detection score, specificity ranking)
//! and JSON/CSV export.

#![warn(missing_docs)]

mod objective_store;
mod table;
mod value;

pub use objective_store::{ObjectiveRecord, ObjectiveStore};
pub use table::{Predicate, RowId, Schema, Table};
pub use value::{ColumnType, Value};
