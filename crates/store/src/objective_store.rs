//! The domain-level objective database: one row per extracted sustainability
//! objective with the five detail fields, company/document provenance, and a
//! derived `deadline_year` column for temporal monitoring queries
//! (paper §2.4: fields like Baseline and Deadline "allow tracking progress
//! over time").
//!
//! Reads and writes go through a `std::sync::RwLock`, so the production
//! pipeline can ingest while analysts query. Poisoned locks are recovered
//! rather than propagated: every mutation is a whole-row insert, so a
//! writer that panicked mid-call cannot leave a partially updated table.
//!
//! Inserts are keyed by content hash: re-inserting a byte-identical record
//! (the common case when a report is re-processed) returns the existing
//! row instead of silently duplicating it. The full field-wise merge
//! semantics live in the log-structured [`ObjectiveDb`](crate::ObjectiveDb);
//! this store stays the lightweight in-memory engine.

use crate::codec;
use crate::shard::UpsertOutcome;
use crate::table::{Predicate, RowId, Schema, Table};
use crate::value::{ColumnType, Value};
use gs_core::ExtractedDetails;
use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One record as stored/exported.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObjectiveRecord {
    /// Company the objective belongs to.
    pub company: String,
    /// Source document.
    pub document: String,
    /// The full objective text (always kept; §2.4 notes it is needed for
    /// complete interpretation).
    pub objective: String,
    /// Extracted Action, if any.
    pub action: Option<String>,
    /// Extracted Amount, if any.
    pub amount: Option<String>,
    /// Extracted Qualifier, if any.
    pub qualifier: Option<String>,
    /// Extracted Baseline, if any.
    pub baseline: Option<String>,
    /// Extracted Deadline, if any.
    pub deadline: Option<String>,
    /// Detection confidence from GoalSpotter.
    pub score: f64,
    /// Stable section id from report ingestion (`gs-ingest`), if the
    /// objective came through the full-report path.
    pub section_id: Option<String>,
    /// Human-readable section path, e.g. `"Report > Climate > Targets"`.
    pub section_path: Option<String>,
    /// Source block kind (`"paragraph"`, `"list_item"`, `"table_cell"`).
    pub block_kind: Option<String>,
    /// Byte range of the sentence in the source report, as `"start..end"`.
    pub source_range: Option<String>,
}

impl ObjectiveRecord {
    /// Builds a record from extraction output.
    pub fn from_details(
        company: &str,
        document: &str,
        objective: &str,
        details: &ExtractedDetails,
        score: f64,
    ) -> Self {
        let field = |k: &str| details.get(k).map(str::to_string);
        ObjectiveRecord {
            company: company.to_string(),
            document: document.to_string(),
            objective: objective.to_string(),
            action: field("Action"),
            amount: field("Amount"),
            qualifier: field("Qualifier"),
            baseline: field("Baseline"),
            deadline: field("Deadline"),
            score,
            ..ObjectiveRecord::default()
        }
    }

    /// Attaches ingestion provenance (section id/path, block kind, source
    /// byte range) to a record built by [`from_details`](Self::from_details).
    pub fn with_provenance(
        mut self,
        section_id: &str,
        section_path: &str,
        block_kind: &str,
        byte_range: (usize, usize),
    ) -> Self {
        self.section_id = Some(section_id.to_string());
        self.section_path = Some(section_path.to_string());
        self.block_kind = Some(block_kind.to_string());
        self.source_range = Some(format!("{}..{}", byte_range.0, byte_range.1));
        self
    }

    /// Number of non-empty detail fields (specificity indicator; the
    /// paper's §5.1 discussion ranks companies by it).
    pub fn completeness(&self) -> usize {
        [&self.action, &self.amount, &self.qualifier, &self.baseline, &self.deadline]
            .iter()
            .filter(|f| f.is_some())
            .count()
    }
}

/// Writer-side state: the table plus the content-hash identity map that
/// makes repeated inserts of the same record a no-op.
struct StoreInner {
    table: Table,
    by_hash: HashMap<u64, RowId>,
}

/// Thread-safe objective database.
pub struct ObjectiveStore {
    inner: RwLock<StoreInner>,
}

impl Default for ObjectiveStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectiveStore {
    fn read(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, StoreInner> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates an empty store with indexes on company and deadline year.
    pub fn new() -> Self {
        let schema = Schema::new(&[
            ("company", ColumnType::Text),
            ("document", ColumnType::Text),
            ("objective", ColumnType::Text),
            ("action", ColumnType::Text),
            ("amount", ColumnType::Text),
            ("qualifier", ColumnType::Text),
            ("baseline", ColumnType::Text),
            ("deadline", ColumnType::Text),
            ("deadline_year", ColumnType::Int),
            ("score_milli", ColumnType::Int),
            ("section_id", ColumnType::Text),
            ("section_path", ColumnType::Text),
            ("block_kind", ColumnType::Text),
            ("source_range", ColumnType::Text),
        ]);
        let mut table = Table::new(schema);
        table.create_hash_index("company");
        table.create_btree_index("deadline_year");
        ObjectiveStore { inner: RwLock::new(StoreInner { table, by_hash: HashMap::new() }) }
    }

    /// Inserts a record, deriving the deadline-year column. Re-inserting a
    /// content-identical record returns the existing row instead of
    /// duplicating it.
    pub fn insert(&self, record: &ObjectiveRecord) -> RowId {
        self.upsert(record).0
    }

    /// Like [`insert`](Self::insert), also reporting whether a new row was
    /// created or an identical one already existed.
    pub fn upsert(&self, record: &ObjectiveRecord) -> (RowId, UpsertOutcome) {
        let hash = codec::content_hash(record);
        let opt = |o: &Option<String>| match o {
            Some(s) => Value::text_or_null(s),
            None => Value::Null,
        };
        let deadline_year =
            record.deadline.as_deref().and_then(Value::parse_year).map_or(Value::Null, Value::Int);
        let row = vec![
            Value::Text(record.company.clone()),
            Value::Text(record.document.clone()),
            Value::Text(record.objective.clone()),
            opt(&record.action),
            opt(&record.amount),
            opt(&record.qualifier),
            opt(&record.baseline),
            opt(&record.deadline),
            deadline_year,
            Value::Int((record.score * 1000.0).round() as i64),
            opt(&record.section_id),
            opt(&record.section_path),
            opt(&record.block_kind),
            opt(&record.source_range),
        ];
        let mut inner = self.write();
        if let Some(&id) = inner.by_hash.get(&hash) {
            drop(inner);
            gs_obs::counter("store.dedup_hits", 1);
            return (id, UpsertOutcome::Unchanged);
        }
        let id = inner.table.insert(row);
        inner.by_hash.insert(hash, id);
        drop(inner);
        if gs_obs::enabled() {
            gs_obs::counter("store.writes", 1);
            gs_obs::emit(
                "store_write",
                "store.objectives",
                vec![("row", id.0.into()), ("completeness", record.completeness().into())],
            );
        }
        (id, UpsertOutcome::Inserted)
    }

    /// Total stored objectives.
    pub fn len(&self) -> usize {
        self.read().table.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record_at(table: &Table, id: RowId) -> ObjectiveRecord {
        let text = |col: &str| table.get(id, col).as_text().map(str::to_string);
        ObjectiveRecord {
            company: text("company").unwrap_or_default(),
            document: text("document").unwrap_or_default(),
            objective: text("objective").unwrap_or_default(),
            action: text("action"),
            amount: text("amount"),
            qualifier: text("qualifier"),
            baseline: text("baseline"),
            deadline: text("deadline"),
            score: table.get(id, "score_milli").as_int().unwrap_or(0) as f64 / 1000.0,
            section_id: text("section_id"),
            section_path: text("section_path"),
            block_kind: text("block_kind"),
            source_range: text("source_range"),
        }
    }

    /// All records matching a predicate.
    pub fn query(&self, predicate: &Predicate) -> Vec<ObjectiveRecord> {
        let inner = self.read();
        inner
            .table
            .select(predicate)
            .into_iter()
            .map(|id| Self::record_at(&inner.table, id))
            .collect()
    }

    /// All records of one company.
    pub fn by_company(&self, company: &str) -> Vec<ObjectiveRecord> {
        self.query(&Predicate::Eq("company".into(), Value::Text(company.to_string())))
    }

    /// Objectives with deadlines in `[from, to]` — the monitoring query.
    pub fn deadlines_between(&self, from: i64, to: i64) -> Vec<ObjectiveRecord> {
        self.query(&Predicate::IntRange("deadline_year".into(), from, to))
    }

    /// The top `k` objectives of a company by detection score (paper
    /// Table 6 shows the top 2 per company).
    pub fn top_objectives(&self, company: &str, k: usize) -> Vec<ObjectiveRecord> {
        let mut records = self.by_company(company);
        records.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.completeness().cmp(&a.completeness()))
        });
        records.truncate(k);
        records
    }

    /// Objective counts per company.
    pub fn counts_by_company(&self) -> Vec<(String, usize)> {
        self.read()
            .table
            .count_by("company")
            .into_iter()
            .filter_map(|(v, c)| v.as_text().map(|s| (s.to_string(), c)))
            .collect()
    }

    /// Mean completeness (fields per record) per company — the paper's
    /// specificity comparison in §5.1.
    pub fn specificity_by_company(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (company, _) in self.counts_by_company() {
            let records = self.by_company(&company);
            let mean = records.iter().map(|r| r.completeness() as f64).sum::<f64>()
                / records.len().max(1) as f64;
            out.push((company, mean));
        }
        out
    }

    /// All records, in insertion order.
    pub fn records(&self) -> Vec<ObjectiveRecord> {
        let inner = self.read();
        (0..inner.table.len()).map(|r| Self::record_at(&inner.table, RowId(r))).collect()
    }

    /// Exports all rows as a JSON array.
    pub fn export_json(&self) -> String {
        codec::records_to_json(&self.records())
    }

    /// Exports all rows as CSV (RFC-4180 quoting).
    pub fn export_csv(&self) -> String {
        let inner = self.read();
        let mut out = String::new();
        let names: Vec<&str> = inner.table.schema().column_names().collect();
        out.push_str(&names.join(","));
        out.push('\n');
        for r in 0..inner.table.len() {
            let cells: Vec<String> =
                inner.table.row(RowId(r)).iter().map(|v| csv_quote(&v.to_string())).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// First line of a [`ObjectiveStore::save`] file.
const SAVE_MAGIC: &str = "gs-objectives v1";

impl ObjectiveStore {
    /// Persists all records in the store's line-oriented text format: a
    /// magic line followed by one encoded record per line (bit-exact score
    /// round-trips, same codec as the WAL).
    pub fn save<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        let mut out = String::with_capacity(64 + self.len() * 96);
        out.push_str(SAVE_MAGIC);
        out.push('\n');
        for record in self.records() {
            out.push_str(&codec::encode_record(&record));
            out.push('\n');
        }
        writer.write_all(out.as_bytes())
    }

    /// Restores a store from [`save`](Self::save) output, rebuilding all
    /// indexes (including the content-hash dedupe map).
    pub fn load<R: std::io::Read>(mut reader: R) -> std::io::Result<Self> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let mut lines = text.lines();
        if lines.next() != Some(SAVE_MAGIC) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("not a {SAVE_MAGIC} file"),
            ));
        }
        let store = ObjectiveStore::new();
        for line in lines {
            let record = codec::decode_record(line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            store.insert(&record);
        }
        Ok(store)
    }
}

fn csv_quote(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(company: &str, deadline: Option<&str>, score: f64) -> ObjectiveRecord {
        let mut details = ExtractedDetails::new();
        details.set("Action", "Reduce");
        details.set("Amount", "20%");
        if let Some(d) = deadline {
            details.set("Deadline", d);
        }
        ObjectiveRecord::from_details(
            company,
            "report.pdf",
            "Reduce emissions by 20%.",
            &details,
            score,
        )
    }

    #[test]
    fn insert_and_query_by_company() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.9));
        store.insert(&record("C2", None, 0.8));
        store.insert(&record("C1", Some("by 2040"), 0.7));
        assert_eq!(store.len(), 3);
        let c1 = store.by_company("C1");
        assert_eq!(c1.len(), 2);
        assert!(c1.iter().all(|r| r.company == "C1"));
    }

    #[test]
    fn non_finite_confidence_is_stored_without_panicking() {
        // Saturating `as i64` casts pin the behavior: NaN lands at 0,
        // infinities clamp, and ranking never panics on partial_cmp.
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), f64::NAN));
        store.insert(&record("C2", Some("2031"), f64::INFINITY));
        store.insert(&record("C3", Some("2032"), f64::NEG_INFINITY));
        store.insert(&record("C1", Some("2033"), 0.5));
        assert_eq!(store.len(), 4);
        assert_eq!(store.by_company("C1")[0].score, 0.0, "NaN quantizes to 0");
        assert!(store.by_company("C2")[0].score > 1e15, "inf clamps to i64::MAX millis");
        assert!(store.by_company("C3")[0].score < -1e15);
        let top = store.top_objectives("C1", 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].score, 0.5, "finite score outranks the NaN-zeroed one");
        // A NaN-scored record re-inserted is still recognised as the same
        // content (the identity hash uses the score's bit pattern).
        let (_, outcome) = store.upsert(&record("C1", Some("2030"), f64::NAN));
        assert_eq!(outcome, UpsertOutcome::Unchanged);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn deadline_year_derivation_enables_monitoring() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.9));
        store.insert(&record("C1", Some("the end of 2026"), 0.9));
        store.insert(&record("C1", None, 0.9));
        let soon = store.deadlines_between(2024, 2027);
        assert_eq!(soon.len(), 1);
        assert_eq!(soon[0].deadline.as_deref(), Some("the end of 2026"));
    }

    #[test]
    fn top_objectives_sorted_by_score() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.5));
        store.insert(&record("C1", Some("2031"), 0.95));
        store.insert(&record("C1", Some("2032"), 0.7));
        let top = store.top_objectives("C1", 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].score, 0.95);
        assert_eq!(top[1].score, 0.7);
    }

    #[test]
    fn completeness_counts_fields() {
        let r = record("C1", Some("2030"), 1.0);
        assert_eq!(r.completeness(), 3); // action, amount, deadline
        let empty = ObjectiveRecord::from_details("C", "d", "o", &ExtractedDetails::new(), 0.0);
        assert_eq!(empty.completeness(), 0);
    }

    #[test]
    fn csv_export_quotes_commas() {
        let store = ObjectiveStore::new();
        let mut details = ExtractedDetails::new();
        details.set("Qualifier", "energy, water and waste");
        store.insert(&ObjectiveRecord::from_details("C1", "d", "obj", &details, 0.5));
        let csv = store.export_csv();
        assert!(csv.contains("\"energy, water and waste\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn json_export_renders_records() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.9));
        let json = store.export_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"company\":\"C1\""));
        assert!(json.contains("\"deadline\":\"2030\""));
        assert_eq!(ObjectiveStore::new().export_json(), "[]");
    }

    #[test]
    fn duplicate_inserts_are_collapsed_to_one_row() {
        let store = ObjectiveStore::new();
        let r = record("C1", Some("2030"), 0.9);
        let (id, out) = store.upsert(&r);
        assert_eq!(out, UpsertOutcome::Inserted);
        let (id2, out2) = store.upsert(&r);
        assert_eq!(out2, UpsertOutcome::Unchanged);
        assert_eq!(id, id2, "re-insert returns the original row");
        assert_eq!(store.len(), 1);
        // A genuinely different record still inserts.
        store.insert(&record("C1", Some("2031"), 0.9));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn concurrent_ingest_and_query() {
        use std::sync::Arc;
        let store = Arc::new(ObjectiveStore::new());
        // Threads 0/2 and 1/3 insert identical record streams: dedupe must
        // collapse each pair to one copy, under concurrency.
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..50 {
                        store.insert(&record(
                            &format!("C{}", t % 2 + 1),
                            Some("2030"),
                            i as f64 / 50.0,
                        ));
                        let _ = store.counts_by_company();
                    }
                });
            }
        });
        assert_eq!(store.len(), 100);
        let counts = store.counts_by_company();
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 100);
    }

    #[test]
    fn save_load_roundtrip_restores_records_and_indexes() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.9));
        store.insert(&record("C2", None, 0.8));
        let mut buf = Vec::new();
        store.save(&mut buf).expect("save");
        let loaded = ObjectiveStore::load(buf.as_slice()).expect("load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.by_company("C1").len(), 1);
        assert_eq!(loaded.deadlines_between(2029, 2031).len(), 1, "btree index rebuilt");
        assert!(ObjectiveStore::load(&b"nonsense"[..]).is_err());
    }

    #[test]
    fn specificity_by_company() {
        let store = ObjectiveStore::new();
        store.insert(&record("C1", Some("2030"), 0.9)); // completeness 3
        store.insert(&ObjectiveRecord::from_details("C2", "d", "o", &ExtractedDetails::new(), 0.1)); // 0
        let spec = store.specificity_by_company();
        let c1 = spec.iter().find(|(c, _)| c == "C1").expect("C1").1;
        let c2 = spec.iter().find(|(c, _)| c == "C2").expect("C2").1;
        assert!(c1 > c2);
    }
}
