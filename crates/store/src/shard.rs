//! One shard of the objective database: the single-writer upsert path, its
//! write-ahead log, and the epoch cell its readers watch.
//!
//! A shard owns every record whose company hashes into it. The writer holds
//! the shard mutex for the duration of one upsert: it resolves the identity
//! key, merges fields, short-circuits on an unchanged content hash (no log
//! append — this is what makes re-processing a report idempotent), appends
//! the merged record to the WAL, and publishes a fresh immutable
//! [`ShardView`]. Readers never take the shard mutex; they go through the
//! [`EpochCell`].

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::codec::{self, LogOp};
use crate::objective_store::ObjectiveRecord;
use crate::view::{EpochCell, Generation, ShardView, StoredRecord};
use crate::wal::{ReplayReport, SyncPolicy, Wal};

/// What an upsert did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// No record existed under this (company, objective); one was created.
    Inserted,
    /// A record existed and the merge changed it; its version advanced.
    Updated,
    /// A record existed and the merge produced identical content; nothing
    /// was logged or republished.
    Unchanged,
}

/// Writer-side state, behind the shard mutex.
struct ShardInner {
    /// The durable log; `None` for ephemeral (in-memory) stores.
    wal: Option<Wal>,
    /// Authoritative live records in seq order.
    records: Vec<StoredRecord>,
    /// identity key -> index into `records`.
    by_key: HashMap<u64, u32>,
    /// Next first-insert sequence number.
    next_seq: u64,
    /// The folded base the current views share.
    base: Generation,
    /// Records upserted since the last fold (at most one entry per key).
    delta: Vec<StoredRecord>,
    /// identity key -> index into `delta`.
    delta_keys: HashMap<u64, u32>,
    /// Upserts logged since the last compaction (drives auto-compaction).
    ops_since_compact: u64,
}

/// One shard: a mutex-guarded writer and a lock-free reader cell.
pub struct Shard {
    id: usize,
    fold_threshold: usize,
    inner: Mutex<ShardInner>,
    cell: EpochCell,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").field("id", &self.id).finish()
    }
}

/// Normalizes the optional detail fields (`Some("")` -> `None`) so merge,
/// content hashing, and the codec agree on one canonical form.
fn normalize(record: &ObjectiveRecord) -> ObjectiveRecord {
    let mut r = record.clone();
    for field in [
        &mut r.action,
        &mut r.amount,
        &mut r.qualifier,
        &mut r.baseline,
        &mut r.deadline,
        &mut r.section_id,
        &mut r.section_path,
        &mut r.block_kind,
        &mut r.source_range,
    ] {
        if field.as_deref() == Some("") {
            *field = None;
        }
    }
    r
}

/// Merges an incoming record into an existing one: identity fields stay,
/// provenance (document, score) follows the newest observation, and each
/// detail or ingestion-provenance field keeps its old value unless the
/// incoming record actually carries one — so a re-run through the flat
/// (provenance-less) path never erases where an objective was first found.
fn merge(existing: &ObjectiveRecord, incoming: &ObjectiveRecord) -> ObjectiveRecord {
    let mut merged = existing.clone();
    merged.document = incoming.document.clone();
    merged.score = incoming.score;
    for (slot, new) in [
        (&mut merged.action, &incoming.action),
        (&mut merged.amount, &incoming.amount),
        (&mut merged.qualifier, &incoming.qualifier),
        (&mut merged.baseline, &incoming.baseline),
        (&mut merged.deadline, &incoming.deadline),
        (&mut merged.section_id, &incoming.section_id),
        (&mut merged.section_path, &incoming.section_path),
        (&mut merged.block_kind, &incoming.block_kind),
        (&mut merged.source_range, &incoming.source_range),
    ] {
        if new.is_some() {
            *slot = new.clone();
        }
    }
    merged
}

impl ShardInner {
    /// Resolves the identity key for (company, objective), linear-probing
    /// past hash collisions between *different* identities. Deterministic
    /// given insertion order, so WAL replay resolves identically.
    fn resolve_key(&self, company: &str, objective: &str) -> (u64, Option<u32>) {
        let mut key = codec::identity_key(company, objective);
        loop {
            match self.by_key.get(&key) {
                None => return (key, None),
                Some(&i) => {
                    let r = &self.records[i as usize].record;
                    if r.company == company && r.objective == objective {
                        return (key, Some(i));
                    }
                    key = key.wrapping_add(1);
                }
            }
        }
    }

    /// Installs `stored` into the authoritative state and the pending delta.
    fn install(&mut self, stored: StoredRecord) {
        match self.by_key.get(&stored.key) {
            Some(&i) => self.records[i as usize] = stored.clone(),
            None => {
                self.by_key.insert(stored.key, self.records.len() as u32);
                self.records.push(stored.clone());
            }
        }
        match self.delta_keys.get(&stored.key) {
            Some(&i) => self.delta[i as usize] = stored,
            None => {
                self.delta_keys.insert(stored.key, self.delta.len() as u32);
                self.delta.push(stored);
            }
        }
    }

    /// Applies one replayed log operation (no logging, no publishing).
    fn apply_replayed(&mut self, op: LogOp) {
        let LogOp::Upsert { seq, version, record } = op;
        let record = normalize(&record);
        let (key, existing) = self.resolve_key(&record.company, &record.objective);
        let stored = StoredRecord::new(key, seq, version, record);
        match existing {
            Some(i) => self.records[i as usize] = stored,
            None => {
                self.by_key.insert(key, self.records.len() as u32);
                self.records.push(stored);
            }
        }
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Folds the delta into a fresh base generation.
    fn fold(&mut self) {
        let mut records = self.records.clone();
        records.sort_by_key(|r| r.seq);
        self.base = Generation::build(records);
        self.delta.clear();
        self.delta_keys.clear();
    }

    /// The view this state should publish.
    fn make_view(&self) -> ShardView {
        ShardView::new(self.base.clone(), self.delta.clone())
    }
}

impl Shard {
    /// Opens a shard backed by the log at `path`, replaying it (and
    /// truncating any torn tail). `None` path means ephemeral: same
    /// semantics, no durability.
    pub fn open(
        id: usize,
        path: Option<&Path>,
        policy: SyncPolicy,
        fold_threshold: usize,
    ) -> io::Result<(Shard, ReplayReport)> {
        let mut inner = ShardInner {
            wal: None,
            records: Vec::new(),
            by_key: HashMap::new(),
            next_seq: 0,
            base: Generation::default(),
            delta: Vec::new(),
            delta_keys: HashMap::new(),
            ops_since_compact: 0,
        };
        let mut report = ReplayReport::default();
        if let Some(path) = path {
            let (wal, payloads, rep) = Wal::open(path, policy)?;
            report = rep;
            for payload in &payloads {
                match codec::decode_op(payload) {
                    Ok(op) => inner.apply_replayed(op),
                    Err(e) => {
                        // A CRC-clean frame with an undecodable payload means
                        // a writer bug or manual edit, not a crash; surface it
                        // rather than silently dropping data.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: {e}", path.display()),
                        ));
                    }
                }
            }
            inner.wal = Some(wal);
        }
        inner.fold();
        let shard = Shard {
            id,
            fold_threshold: fold_threshold.max(1),
            inner: Mutex::new(inner),
            cell: EpochCell::new(),
        };
        {
            let inner = shard.lock();
            shard.cell.publish(Arc::new(inner.make_view()));
        }
        Ok((shard, report))
    }

    fn lock(&self) -> MutexGuard<'_, ShardInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// This shard's index within the database.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The cell readers subscribe to.
    pub fn cell(&self) -> &EpochCell {
        &self.cell
    }

    /// Upserts one record: insert when new, field-wise merge when the
    /// (company, objective) identity already exists, and a no-op (not even a
    /// log append) when the merge result is content-identical.
    pub fn upsert(&self, record: &ObjectiveRecord) -> io::Result<UpsertOutcome> {
        let incoming = normalize(record);
        let mut inner = self.lock();
        let (key, existing) = inner.resolve_key(&incoming.company, &incoming.objective);
        let (stored, outcome) = match existing {
            None => {
                let seq = inner.next_seq;
                inner.next_seq += 1;
                (StoredRecord::new(key, seq, 1, incoming), UpsertOutcome::Inserted)
            }
            Some(i) => {
                let prior = &inner.records[i as usize];
                let merged = merge(&prior.record, &incoming);
                // Hash-based comparison, not PartialEq: a NaN score must
                // still compare equal to itself or every re-run would bump
                // the version and dirty the log forever.
                if codec::content_hash(&merged) == codec::content_hash(&prior.record) {
                    return Ok(UpsertOutcome::Unchanged);
                }
                let (seq, version) = (prior.seq, prior.version + 1);
                (StoredRecord::new(key, seq, version, merged), UpsertOutcome::Updated)
            }
        };
        if let Some(wal) = inner.wal.as_mut() {
            let op = LogOp::Upsert {
                seq: stored.seq,
                version: stored.version,
                record: stored.record.clone(),
            };
            wal.append(&codec::encode_op(&op))?;
        }
        inner.install(stored);
        inner.ops_since_compact += 1;
        if inner.delta.len() >= self.fold_threshold {
            inner.fold();
        }
        self.cell.publish(Arc::new(inner.make_view()));
        Ok(outcome)
    }

    /// Forces any unsynced appends to disk.
    pub fn sync(&self) -> io::Result<()> {
        match self.lock().wal.as_mut() {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Rewrites the log to exactly the live records (one op each, in seq
    /// order), folds, and republishes. The log shrinks to its snapshot form;
    /// recovery after this replays one op per record.
    pub fn compact(&self) -> io::Result<CompactionStats> {
        let mut inner = self.lock();
        let before = inner.wal.as_ref().map_or(0, Wal::len_bytes);
        let ops_folded = inner.ops_since_compact;
        let mut live = inner.records.clone();
        live.sort_by_key(|r| r.seq);
        if let Some(wal) = inner.wal.as_mut() {
            wal.rewrite(live.iter().map(|r| {
                codec::encode_op(&LogOp::Upsert {
                    seq: r.seq,
                    version: r.version,
                    record: r.record.clone(),
                })
            }))?;
        }
        inner.ops_since_compact = 0;
        inner.fold();
        self.cell.publish(Arc::new(inner.make_view()));
        let after = inner.wal.as_ref().map_or(0, Wal::len_bytes);
        Ok(CompactionStats { shard: self.id, bytes_before: before, bytes_after: after, ops_folded })
    }

    /// Number of upserts logged since the last compaction.
    pub fn ops_since_compact(&self) -> u64 {
        self.lock().ops_since_compact
    }

    /// Live record count (writer-side authoritative).
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// Whether the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current log size in bytes (0 for ephemeral shards).
    pub fn wal_bytes(&self) -> u64 {
        self.lock().wal.as_ref().map_or(0, Wal::len_bytes)
    }
}

/// What one shard compaction accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactionStats {
    /// Shard index.
    pub shard: usize,
    /// Log bytes before the rewrite.
    pub bytes_before: u64,
    /// Log bytes after the rewrite.
    pub bytes_after: u64,
    /// Upserts folded away since the previous compaction.
    pub ops_folded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("gs-shard-test-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn record(company: &str, objective: &str) -> ObjectiveRecord {
        ObjectiveRecord {
            company: company.into(),
            document: "doc-a".into(),
            objective: objective.into(),
            action: Some("Cut".into()),
            amount: None,
            qualifier: None,
            baseline: None,
            deadline: Some("2030".into()),
            score: 0.75,
            ..ObjectiveRecord::default()
        }
    }

    #[test]
    fn provenance_merges_some_wins_and_survives_flat_rerun() {
        let (shard, _) = Shard::open(0, None, SyncPolicy::Always, 4).expect("open");
        let ingested = record("Acme", "Cut emissions 50% by 2030").with_provenance(
            "00c0ffee00c0ffee",
            "Report > Climate > Targets",
            "list_item",
            (120, 156),
        );
        assert_eq!(shard.upsert(&ingested).unwrap(), UpsertOutcome::Inserted);
        // A flat (provenance-less) re-run of the same objective must not
        // erase where it was first found.
        let flat = record("Acme", "Cut emissions 50% by 2030");
        assert_eq!(shard.upsert(&flat).unwrap(), UpsertOutcome::Unchanged);
        // A re-ingest that moved the objective updates the provenance.
        let moved = record("Acme", "Cut emissions 50% by 2030").with_provenance(
            "00c0ffee00c0ffee",
            "Report > Climate > Targets",
            "list_item",
            (130, 166),
        );
        assert_eq!(shard.upsert(&moved).unwrap(), UpsertOutcome::Updated);
        let view = shard.cell().load();
        let mut got = None;
        view.for_company("Acme", |s| got = Some(s.record.clone()));
        let got = got.expect("record");
        assert_eq!(got.section_path.as_deref(), Some("Report > Climate > Targets"));
        assert_eq!(got.source_range.as_deref(), Some("130..166"));
    }

    #[test]
    fn repeat_upsert_is_unchanged_and_merge_fills_fields() {
        let (shard, _) = Shard::open(0, None, SyncPolicy::Always, 4).expect("open");
        let r = record("Acme", "Cut emissions 50% by 2030");
        assert_eq!(shard.upsert(&r).unwrap(), UpsertOutcome::Inserted);
        assert_eq!(shard.upsert(&r).unwrap(), UpsertOutcome::Unchanged);
        // New detail arrives from a re-run: amount filled, action kept.
        let mut richer = r.clone();
        richer.action = None;
        richer.amount = Some("50%".into());
        assert_eq!(shard.upsert(&richer).unwrap(), UpsertOutcome::Updated);
        assert_eq!(shard.upsert(&richer).unwrap(), UpsertOutcome::Unchanged);
        let view = shard.cell().load();
        assert_eq!(view.len(), 1);
        let mut got = None;
        view.for_company("Acme", |s| got = Some(s.clone()));
        let got = got.expect("record");
        assert_eq!(got.version, 2);
        assert_eq!(got.record.action.as_deref(), Some("Cut"));
        assert_eq!(got.record.amount.as_deref(), Some("50%"));
    }

    #[test]
    fn nan_scores_do_not_defeat_idempotency() {
        let (shard, _) = Shard::open(0, None, SyncPolicy::Always, 4).expect("open");
        let mut r = record("Acme", "objective");
        r.score = f64::NAN;
        assert_eq!(shard.upsert(&r).unwrap(), UpsertOutcome::Inserted);
        assert_eq!(shard.upsert(&r).unwrap(), UpsertOutcome::Unchanged);
    }

    #[test]
    fn replay_restores_seq_version_and_content() {
        let dir = tmp_dir("replay");
        let path = dir.join("shard-0.log");
        {
            let (shard, _) = Shard::open(0, Some(&path), SyncPolicy::Always, 4).expect("open");
            shard.upsert(&record("Acme", "obj-1")).unwrap();
            shard.upsert(&record("Bcme", "obj-2")).unwrap();
            let mut updated = record("Acme", "obj-1");
            updated.amount = Some("50%".into());
            shard.upsert(&updated).unwrap();
        }
        let (shard, report) = Shard::open(0, Some(&path), SyncPolicy::Always, 4).expect("reopen");
        assert_eq!(report.frames, 3);
        assert_eq!(shard.len(), 2);
        let view = shard.cell().load();
        let mut seen = Vec::new();
        view.for_each(|s| seen.push((s.seq, s.version, s.record.objective.clone())));
        seen.sort();
        assert_eq!(seen[0], (0, 2, "obj-1".to_string()));
        assert_eq!(seen[1], (1, 1, "obj-2".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let dir = tmp_dir("compact");
        let path = dir.join("shard-0.log");
        let (shard, _) = Shard::open(0, Some(&path), SyncPolicy::Always, 4).expect("open");
        for i in 0..20 {
            let mut r = record("Acme", "the one objective");
            r.amount = Some(format!("{i}%"));
            shard.upsert(&r).unwrap();
        }
        let stats = shard.compact().expect("compact");
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(stats.ops_folded, 20);
        let (shard2, report) = Shard::open(0, Some(&path), SyncPolicy::Always, 4).expect("reopen");
        assert_eq!(report.frames, 1, "one live record, one op after compaction");
        assert_eq!(shard2.len(), 1);
        let view = shard2.cell().load();
        let mut got = None;
        view.for_company("Acme", |s| got = Some(s.clone()));
        let got = got.expect("record");
        assert_eq!(got.version, 20);
        assert_eq!(got.record.amount.as_deref(), Some("19%"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fold_threshold_bounds_the_delta() {
        let (shard, _) = Shard::open(0, None, SyncPolicy::Always, 8).expect("open");
        for i in 0..100 {
            shard.upsert(&record("Acme", &format!("objective {i}"))).unwrap();
        }
        let view = shard.cell().load();
        assert_eq!(view.len(), 100);
        assert!(view.delta_len() < 8, "delta {} must stay under threshold", view.delta_len());
    }
}
