//! Concurrent stress test over the epoch/swap publication scheme: several
//! readers refresh [`ReadHandle`]s while one swapper publishes growing
//! views and a background folder republishes delta-free equivalents — the
//! reader/writer/fold triangle the real store runs under load.
//!
//! Every view a reader observes must be **fully published**: all records
//! carry the view's generation stamp, the key set is exactly `1..=stamp`,
//! and the cached length matches. A torn publish (a reader seeing the new
//! epoch with a stale or half-swapped slot) would mix stamps or miscount.
//!
//! The CI `race` job runs this test with the `race-model` feature and
//! `GS_RACE=1`, so every wrapped mutex/atomic/probe op in `view.rs` feeds
//! the vector-clock detector; `take_live_races()` must come back empty.
//! Without the feature the detector calls are inert no-ops, so the test
//! also runs (as a plain stress test) in the default build.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gs_store::{EpochCell, Generation, ObjectiveRecord, ReadHandle, ShardView, StoredRecord};

const PUBLISHES: u32 = 200;
const READERS: usize = 4;

fn record(key: u64, stamp: u32) -> StoredRecord {
    let rec = ObjectiveRecord {
        company: format!("C{}", key % 3),
        document: "doc".into(),
        objective: format!("objective {key}"),
        action: None,
        amount: None,
        qualifier: None,
        baseline: None,
        deadline: Some(format!("{}", 2026 + (key % 10))),
        score: 0.9,
        ..ObjectiveRecord::default()
    };
    StoredRecord::new(key, key, stamp, rec)
}

/// Builds the stamped view with keys `1..=stamp`: the older half folded
/// into the base, the newer half left in the delta (so the folder always
/// has work to do).
fn build_view(stamp: u32) -> ShardView {
    let split = u64::from(stamp) / 2;
    let base: Vec<StoredRecord> = (1..=split).map(|k| record(k, stamp)).collect();
    let delta: Vec<StoredRecord> =
        (split + 1..=u64::from(stamp)).map(|k| record(k, stamp)).collect();
    ShardView::new(Generation::build(base), delta)
}

/// Asserts the view is internally consistent — one generation stamp, the
/// exact key set for that stamp, and a matching cached length.
fn check_view(view: &ShardView) {
    let mut stamps = BTreeSet::new();
    let mut keys = BTreeSet::new();
    view.for_each(|r| {
        stamps.insert(r.version);
        keys.insert(r.key);
    });
    if keys.is_empty() {
        return; // initial empty view, before the first publish
    }
    assert_eq!(stamps.len(), 1, "view mixes generation stamps: {stamps:?}");
    let stamp = *stamps.iter().next().unwrap();
    let expect: BTreeSet<u64> = (1..=u64::from(stamp)).collect();
    assert_eq!(keys, expect, "view for stamp {stamp} is missing or inventing keys");
    assert_eq!(view.len(), keys.len(), "cached len disagrees with visible records");
    // Point lookups resolve inside the same snapshot.
    assert_eq!(view.get(1).map(|r| r.version), Some(stamp));
}

#[test]
fn concurrent_readers_always_see_fully_published_views() {
    gs_race::set_detecting(true);

    let cell = Arc::new(EpochCell::new());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut handle = ReadHandle::new();
                let mut refreshes = 0u64;
                while !done.load(Ordering::Relaxed) {
                    check_view(handle.view(&cell));
                    refreshes += 1;
                    if refreshes.is_multiple_of(16) {
                        std::thread::yield_now();
                    }
                }
                // One final refresh so the last publish is also covered.
                check_view(handle.view(&cell));
            })
        })
        .collect();

    // Background folder: takes whatever view is current and republishes it
    // with the delta folded into the base — same records, same stamp.
    let folder = {
        let cell = Arc::clone(&cell);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let view = cell.load();
                if view.delta_len() > 0 {
                    let mut all = Vec::new();
                    view.for_each(|r| all.push(r.clone()));
                    all.sort_by_key(|r| r.seq);
                    cell.publish(Arc::new(ShardView::new(Generation::build(all), Vec::new())));
                }
                std::thread::yield_now();
            }
        })
    };

    // The swapper: one growing publish per stamp.
    for stamp in 1..=PUBLISHES {
        cell.publish(Arc::new(build_view(stamp)));
        if stamp.is_multiple_of(32) {
            std::thread::yield_now();
        }
    }
    done.store(true, Ordering::Relaxed);

    folder.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }

    gs_race::set_detecting(false);
    let races = gs_race::take_live_races();
    assert!(
        races.is_empty(),
        "live race detector flagged the epoch/swap scheme:\n{}",
        races.iter().map(|r| r.to_string()).collect::<Vec<_>>().join("\n")
    );
}
