//! Compositional generator for synthetic sustainability objectives.
//!
//! Each generated objective is assembled from phrase banks through one of
//! several syntactic frames, while tracking exactly which component strings
//! were placed into the text. The gold components then become the coarse,
//! objective-level annotations — optionally with *annotation dropout*
//! (a present component the expert did not annotate, producing the paper's
//! per-field coverage imbalance) and *annotation noise* (the expert wrote a
//! lexical variant that exact token matching cannot locate, the §5.3
//! limitation).
//!
//! Difficulty comes from *role ambiguity*: percentages, years, and lexicon
//! verbs also appear in distractor clauses where they are NOT the amount /
//! deadline / action, and objectives may carry a second, unannotated target
//! (paper §5.3). Resolving these requires sentence-level context, which is
//! exactly the axis on which the paper's comparison separates the
//! approaches.

use crate::banks;
use gs_core::{Annotations, Objective};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Presence and annotation-coverage rates for one field.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FieldRates {
    /// Probability the component appears in the generated text.
    pub presence: f64,
    /// Probability a present component is annotated by the "expert".
    pub coverage: f64,
}

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GrammarConfig {
    /// Action field rates.
    pub action: FieldRates,
    /// Amount field rates.
    pub amount: FieldRates,
    /// Qualifier field rates.
    pub qualifier: FieldRates,
    /// Baseline field rates.
    pub baseline: FieldRates,
    /// Deadline field rates.
    pub deadline: FieldRates,
    /// Probability an annotated value is a lexical variant of the text
    /// (case/inflection change), which exact matching may miss.
    pub annotation_noise: f64,
    /// Probability of a contextual prefix clause.
    pub p_prefix: f64,
    /// Probability of a trailing scope suffix.
    pub p_suffix: f64,
    /// Probability of a distractor clause containing an irrelevant year.
    pub p_year_distractor: f64,
    /// Probability of a leading clause containing an irrelevant percent.
    pub p_pct_distractor_pre: f64,
    /// Probability of a trailing clause containing an irrelevant percent.
    pub p_pct_distractor_post: f64,
    /// Probability of a clause containing lexicon verbs in non-Action roles.
    pub p_verb_distractor: f64,
    /// Probability of a second, unannotated target in the same sentence.
    pub p_second_target: f64,
    /// Probability of a superseded-commitment lead clause (a full earlier
    /// target that is no longer the objective).
    pub p_superseded_lead: f64,
    /// Probability a qualifier is built compositionally
    /// (modifier + head + tail) rather than drawn from the fixed bank.
    pub p_compositional_qualifier: f64,
}

impl Default for GrammarConfig {
    /// Rates tuned so annotated-field frequencies match the paper's
    /// *Sustainability Goals* dataset: Action ~85%, Baseline ~14%,
    /// Deadline ~34% (§4.3).
    fn default() -> Self {
        GrammarConfig {
            action: FieldRates { presence: 0.90, coverage: 0.95 },
            amount: FieldRates { presence: 0.65, coverage: 0.92 },
            qualifier: FieldRates { presence: 0.88, coverage: 0.88 },
            baseline: FieldRates { presence: 0.16, coverage: 0.88 },
            deadline: FieldRates { presence: 0.38, coverage: 0.90 },
            annotation_noise: 0.08,
            p_prefix: 0.35,
            p_suffix: 0.25,
            p_year_distractor: 0.25,
            p_pct_distractor_pre: 0.22,
            p_pct_distractor_post: 0.18,
            p_verb_distractor: 0.20,
            p_second_target: 0.30,
            p_superseded_lead: 0.25,
            p_compositional_qualifier: 0.5,
        }
    }
}

/// A generated objective together with the components actually placed in
/// its text (before annotation dropout/noise).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedObjective {
    /// The assembled objective.
    pub objective: Objective,
    /// Ground-truth components present in the text (field name -> exact
    /// substring). This is what a perfect extractor should produce,
    /// independent of what was annotated.
    pub truth: Annotations,
}

/// Deterministic objective generator.
pub struct ObjectiveGrammar {
    config: GrammarConfig,
}

impl ObjectiveGrammar {
    /// Creates a generator with the given configuration.
    pub fn new(config: GrammarConfig) -> Self {
        ObjectiveGrammar { config }
    }

    /// Generates one annotated objective.
    pub fn generate(&self, id: u64, rng: &mut StdRng) -> GeneratedObjective {
        let c = &self.config;
        let has_action = rng.random_bool(c.action.presence);
        let has_amount = rng.random_bool(c.amount.presence);
        let has_qualifier = rng.random_bool(c.qualifier.presence) || (!has_action && !has_amount);
        let has_deadline = rng.random_bool(c.deadline.presence);
        // A baseline only makes sense next to a dated change.
        let has_baseline =
            has_deadline && rng.random_bool(c.baseline.presence / c.deadline.presence.max(1e-9));

        let action = has_action.then(|| (*banks::ACTIONS.choose(rng).expect("bank")).to_string());
        // 70% of amounts are percents drawn from the same distribution as
        // distractor percents, so value identity carries no role signal.
        let amount = has_amount.then(|| {
            if rng.random_bool(0.7) {
                format!("{}%", rng.random_range(2..=95))
            } else {
                (*banks::AMOUNTS.choose(rng).expect("bank")).to_string()
            }
        });
        let qualifier = has_qualifier.then(|| self.make_qualifier(rng));
        let deadline_year = rng.random_range(2024..=2055);
        let baseline_year = rng.random_range(2010..=2022);
        let deadline = has_deadline.then(|| deadline_year.to_string());
        let baseline = has_baseline.then(|| baseline_year.to_string());

        let text = self.assemble(
            rng,
            action.as_deref(),
            amount.as_deref(),
            qualifier.as_deref(),
            baseline.as_deref(),
            deadline.as_deref(),
        );

        let mut truth = Annotations::new();
        let mut annotations = Annotations::new();
        for (name, value, rates) in [
            ("Action", &action, c.action),
            ("Amount", &amount, c.amount),
            ("Qualifier", &qualifier, c.qualifier),
            ("Baseline", &baseline, c.baseline),
            ("Deadline", &deadline, c.deadline),
        ] {
            let Some(v) = value else {
                annotations.set(name, "");
                continue;
            };
            truth.set(name, v);
            if rng.random_bool(rates.coverage) {
                let annotated = if rng.random_bool(c.annotation_noise) {
                    noisy_variant(v, rng)
                } else {
                    v.clone()
                };
                annotations.set(name, &annotated);
            } else {
                annotations.set(name, "");
            }
        }

        GeneratedObjective { objective: Objective::annotated(id, text, annotations), truth }
    }

    /// Draws a qualifier: either from the fixed bank or composed from a
    /// large open vocabulary (modifier + head + optional tail).
    fn make_qualifier(&self, rng: &mut StdRng) -> String {
        if !rng.random_bool(self.config.p_compositional_qualifier) {
            return (*banks::QUALIFIERS.choose(rng).expect("bank")).to_string();
        }
        let head = *banks::QUALIFIER_HEADS.choose(rng).expect("bank");
        let mut out = String::new();
        if rng.random_bool(0.6) {
            out.push_str(banks::QUALIFIER_MODIFIERS.choose(rng).expect("bank"));
            out.push(' ');
        }
        out.push_str(head);
        if rng.random_bool(0.4) {
            out.push(' ');
            out.push_str(banks::QUALIFIER_TAILS.choose(rng).expect("bank"));
        }
        out
    }

    /// Assembles the objective text from the chosen components using one of
    /// several syntactic frames, returning the final sentence. Components
    /// are inserted verbatim so gold values are exact substrings.
    fn assemble(
        &self,
        rng: &mut StdRng,
        action: Option<&str>,
        amount: Option<&str>,
        qualifier: Option<&str>,
        baseline: Option<&str>,
        deadline: Option<&str>,
    ) -> String {
        let c = &self.config;
        let deadline_phrase =
            deadline.map(|y| fill(banks::DEADLINE_FRAMES.choose(rng).expect("bank"), y));
        let baseline_phrase =
            baseline.map(|y| fill(banks::BASELINE_FRAMES.choose(rng).expect("bank"), y));

        // Core clause: arrange action/amount/qualifier.
        let core = match (action, amount, qualifier) {
            (Some(a), Some(m), Some(q)) => match rng.random_range(0..3) {
                0 => format!("{a} {q} by {m}"),
                1 => format!("{a} {m} of our {q}"),
                _ => format!("{a} {m} {q}"),
            },
            (Some(a), Some(m), None) => format!("{a} {m}"),
            (Some(a), None, Some(q)) => format!("{a} {q}"),
            (None, Some(m), Some(q)) => format!("{m} {q}"),
            (Some(a), None, None) => format!("{a} our sustainability performance"),
            (None, Some(m), None) => format!("{m} improvement target"),
            (None, None, Some(q)) => format!("Focus on {q}"),
            (None, None, None) => "Strengthen our sustainability program".to_string(),
        };

        let mut parts: Vec<String> = Vec::new();

        // Superseded-commitment lead: a full earlier target whose percent
        // and year windows are locally identical to the live target's.
        let has_superseded = rng.random_bool(c.p_superseded_lead);
        if has_superseded {
            let q = self.make_qualifier(rng);
            let p = format!("{}%", rng.random_range(2..=95));
            let y = rng.random_range(2024..=2045).to_string();
            let b = rng.random_range(2010..=2022).to_string();
            let frame = banks::SUPERSEDED_LEADS.choose(rng).expect("bank");
            parts.push(
                frame
                    .replacen("{q}", &q, 1)
                    .replacen("{p}", &p, 1)
                    .replacen("{y}", &y, 1)
                    .replacen("{b}", &b, 1),
            );
        }

        // Leading percent distractor — a percent BEFORE the real amount,
        // with a qualifier-distribution noun phrase next to it. Exclusive
        // with the superseded lead so sentences carry at most one leading
        // distractor clause.
        if !has_superseded && rng.random_bool(c.p_pct_distractor_pre) {
            let pct = format!("{}%", rng.random_range(2..=95));
            let q = self.make_qualifier(rng);
            let frame = banks::PCT_DISTRACTORS_PRE.choose(rng).expect("bank");
            parts.push(frame.replacen("{q}", &q, 1).replacen("{p}", &pct, 1));
        }

        let deadline_fronted = deadline_phrase.is_some() && rng.random_bool(0.25);
        if deadline_fronted {
            let dp = deadline_phrase.clone().expect("deadline present");
            let fronted = if parts.is_empty() { capitalize(&dp) } else { dp };
            parts.push(format!("{fronted},"));
        } else if rng.random_bool(c.p_prefix) && !action.is_some_and(|a| a.starts_with("will ")) {
            // Prefixes end in "to"/"we will"; skip them for "will ..."
            // action forms to avoid ungrammatical "to will reduce".
            let prefix = *banks::PREFIXES.choose(rng).expect("bank");
            parts.push(prefix.to_string());
        }

        parts.push(core);

        // Second, unannotated target (multi-target objectives, §5.3).
        // Half of them carry their own deadline, producing "by {m} by {y}"
        // windows locally identical to the primary target's.
        if rng.random_bool(c.p_second_target) {
            let q2 = self.make_qualifier(rng);
            let m2 = format!("{}%", rng.random_range(2..=95));
            if rng.random_bool(0.5) {
                let y2 = rng.random_range(2024..=2055).to_string();
                let frame = banks::SECOND_TARGETS_DATED.choose(rng).expect("bank");
                parts.push(
                    frame.replacen("{q}", &q2, 1).replacen("{m}", &m2, 1).replacen("{y}", &y2, 1),
                );
            } else {
                let frame = banks::SECOND_TARGETS.choose(rng).expect("bank");
                parts.push(frame.replacen("{q}", &q2, 1).replacen("{m}", &m2, 1));
            }
        }

        if !deadline_fronted {
            if let Some(dp) = &deadline_phrase {
                parts.push(dp.clone());
            }
        }
        if let Some(bp) = &baseline_phrase {
            parts.push(bp.clone());
        }
        if rng.random_bool(c.p_verb_distractor) {
            parts.push((*banks::VERB_DISTRACTORS.choose(rng).expect("bank")).to_string());
        }
        if rng.random_bool(c.p_suffix) {
            parts.push((*banks::SUFFIXES.choose(rng).expect("bank")).to_string());
        }
        if rng.random_bool(c.p_pct_distractor_post) {
            let pct = format!("{}%", rng.random_range(2..=95));
            let q = self.make_qualifier(rng);
            let frame = banks::PCT_DISTRACTORS_POST.choose(rng).expect("bank");
            parts.push(frame.replacen("{q}", &q, 1).replacen("{p}", &pct, 1));
        }
        if rng.random_bool(c.p_year_distractor) {
            let year = rng.random_range(2015..=2023).to_string();
            parts.push(fill(banks::SUFFIX_DISTRACTORS.choose(rng).expect("bank"), &year));
        }
        let mut text = parts.join(" ");
        text.push('.');
        text
    }
}

fn fill(frame: &str, value: &str) -> String {
    frame.replacen("{}", value, 1)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(f) => f.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Produces a lexical variant of an annotation value: case flip on the first
/// letter, or dropping a leading auxiliary ("will reduce" -> "reduce").
/// These are the semantically-equivalent-but-lexically-different expressions
/// the paper's exact matcher misses (§5.3).
fn noisy_variant(value: &str, rng: &mut StdRng) -> String {
    if let Some(stripped) = value.strip_prefix("will ") {
        return stripped.to_string();
    }
    let mut chars = value.chars();
    match chars.next() {
        Some(f) if f.is_lowercase() && rng.random_bool(0.5) => {
            f.to_uppercase().collect::<String>() + chars.as_str()
        }
        Some(f) => f.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn generate_many(n: usize, seed: u64) -> Vec<GeneratedObjective> {
        let grammar = ObjectiveGrammar::new(GrammarConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| grammar.generate(i as u64, &mut rng)).collect()
    }

    #[test]
    fn truth_components_are_exact_substrings() {
        for g in generate_many(300, 1) {
            for (_, v) in g.truth.present() {
                assert!(
                    g.objective.text.contains(v),
                    "truth value {:?} not in text {:?}",
                    v,
                    g.objective.text
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_many(50, 42);
        let b = generate_many(50, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.objective.text, y.objective.text);
            assert_eq!(x.objective.annotations, y.objective.annotations);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_many(20, 1);
        let b = generate_many(20, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.objective.text != y.objective.text));
    }

    #[test]
    fn coverage_rates_match_paper_profile() {
        let n = 4000;
        let gens = generate_many(n, 7);
        let rate = |field: &str| {
            gens.iter()
                .filter(|g| {
                    g.objective
                        .annotations
                        .as_ref()
                        .and_then(|a| a.get(field))
                        .is_some_and(|v| !v.is_empty())
                })
                .count() as f64
                / n as f64
        };
        let action = rate("Action");
        let baseline = rate("Baseline");
        let deadline = rate("Deadline");
        // Paper §4.3: Action 85%, Baseline 14%, Deadline 34%.
        assert!((action - 0.85).abs() < 0.05, "action coverage {action}");
        assert!((baseline - 0.14).abs() < 0.05, "baseline coverage {baseline}");
        assert!((deadline - 0.34).abs() < 0.06, "deadline coverage {deadline}");
    }

    #[test]
    fn annotation_noise_produces_nonsubstring_values() {
        let gens = generate_many(1500, 11);
        let mut noisy = 0;
        let mut total = 0;
        for g in &gens {
            let ann = g.objective.annotations.as_ref().expect("annotated");
            for (_, v) in ann.present() {
                total += 1;
                if !g.objective.text.contains(v) {
                    noisy += 1;
                }
            }
        }
        let frac = noisy as f64 / total as f64;
        assert!(frac > 0.02 && frac < 0.15, "noise fraction {frac}");
    }

    #[test]
    fn distractors_inject_role_ambiguity() {
        let gens = generate_many(1000, 13);
        // Count objectives whose text has more percents than gold amounts.
        let mut ambiguous = 0;
        for g in &gens {
            let pct_count = g.objective.text.matches('%').count();
            let amount_is_pct = g.truth.get("Amount").is_some_and(|a| a.contains('%'));
            if pct_count > usize::from(amount_is_pct) {
                ambiguous += 1;
            }
        }
        let frac = ambiguous as f64 / gens.len() as f64;
        assert!(frac > 0.25, "too little ambiguity: {frac}");
    }

    #[test]
    fn compositional_qualifiers_create_open_vocabulary() {
        let gens = generate_many(800, 17);
        let qualifiers: std::collections::HashSet<String> =
            gens.iter().filter_map(|g| g.truth.get("Qualifier").map(str::to_string)).collect();
        assert!(qualifiers.len() > 150, "only {} distinct qualifiers", qualifiers.len());
    }

    #[test]
    fn texts_end_with_period_and_are_nonempty() {
        for g in generate_many(100, 3) {
            assert!(g.objective.text.ends_with('.'));
            assert!(g.objective.text.len() > 7, "text {:?}", g.objective.text);
        }
    }
}
