//! Document model for sustainability reports: reports contain pages, pages
//! contain text blocks, and some blocks are sustainability objectives
//! (Figure 1). GoalSpotter's detection stage classifies blocks; the detail
//! extractor runs on detected objective blocks.

use crate::banks;
use crate::grammar::{GrammarConfig, ObjectiveGrammar};
use gs_core::Annotations;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A text block within a report page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Block {
    /// The block text.
    pub text: String,
    /// Ground truth: whether this block states a sustainability objective.
    pub is_objective: bool,
    /// For objective blocks, the ground-truth components present in the
    /// text (used to evaluate end-to-end extraction).
    pub truth: Option<Annotations>,
}

/// A report page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Page {
    /// Text blocks in reading order.
    pub blocks: Vec<Block>,
}

/// A sustainability report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Owning company.
    pub company: String,
    /// Report title.
    pub title: String,
    /// Pages.
    pub pages: Vec<Page>,
}

impl Report {
    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.pages.iter().map(|p| p.blocks.len()).sum()
    }

    /// Number of ground-truth objective blocks.
    pub fn num_objectives(&self) -> usize {
        self.pages.iter().flat_map(|p| &p.blocks).filter(|b| b.is_objective).count()
    }

    /// Iterates over all blocks with their (page, block) position.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, usize, &Block)> {
        self.pages
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| p.blocks.iter().enumerate().map(move |(bi, b)| (pi, bi, b)))
    }
}

/// Configuration for report generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportConfig {
    /// Blocks per page (inclusive range).
    pub blocks_per_page: (usize, usize),
    /// Grammar used for objective blocks.
    pub grammar: GrammarConfig,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig { blocks_per_page: (3, 6), grammar: GrammarConfig::default() }
    }
}

/// Generates a report for `company` with exactly `pages` pages containing a
/// total of `objectives` objective blocks scattered among noise blocks.
pub fn generate_report(
    company: &str,
    title: &str,
    pages: usize,
    objectives: usize,
    config: &ReportConfig,
    rng: &mut StdRng,
) -> Report {
    let grammar = ObjectiveGrammar::new(config.grammar.clone());
    // Choose which pages carry objectives.
    let mut objective_pages = vec![0usize; pages.max(1)];
    for _ in 0..objectives {
        let p = rng.random_range(0..pages.max(1));
        objective_pages[p] += 1;
    }
    let mut next_id = 0u64;
    let pages_vec: Vec<Page> = (0..pages.max(1))
        .map(|p| {
            let (lo, hi) = config.blocks_per_page;
            let noise_blocks = rng.random_range(lo..=hi);
            let mut blocks: Vec<Block> = (0..noise_blocks)
                .map(|_| Block {
                    text: (*banks::NOISE_BLOCKS.choose(rng).expect("bank")).to_string(),
                    is_objective: false,
                    truth: None,
                })
                .collect();
            for _ in 0..objective_pages[p] {
                let g = grammar.generate(next_id, rng);
                next_id += 1;
                let pos = rng.random_range(0..=blocks.len());
                blocks.insert(
                    pos,
                    Block { text: g.objective.text, is_objective: true, truth: Some(g.truth) },
                );
            }
            Page { blocks }
        })
        .collect();
    Report { company: company.to_string(), title: title.to_string(), pages: pages_vec }
}

/// Generates a synthetic company name.
pub fn company_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        banks::COMPANY_HEADS.choose(rng).expect("bank"),
        banks::COMPANY_TAILS.choose(rng).expect("bank")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn report_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = generate_report("C1", "CSR 2025", 10, 7, &ReportConfig::default(), &mut rng);
        assert_eq!(r.pages.len(), 10);
        assert_eq!(r.num_objectives(), 7);
        assert!(r.num_blocks() >= 10 * 3 + 7);
    }

    #[test]
    fn objective_blocks_carry_truth() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = generate_report("C2", "ESG 2025", 5, 4, &ReportConfig::default(), &mut rng);
        for (_, _, b) in r.blocks() {
            assert_eq!(b.is_objective, b.truth.is_some());
        }
    }

    #[test]
    fn zero_objective_report_is_all_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = generate_report("C3", "Annual", 3, 0, &ReportConfig::default(), &mut rng);
        assert_eq!(r.num_objectives(), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_report("C4", "T", 4, 3, &ReportConfig::default(), &mut rng)
        };
        let a = gen(9);
        let b = gen(9);
        let texts = |r: &Report| r.blocks().map(|(_, _, b)| b.text.clone()).collect::<Vec<_>>();
        assert_eq!(texts(&a), texts(&b));
    }
}
