//! Seeded full-report generator: whole semi-structured report texts with
//! nested sections, boilerplate paragraphs, bullet lists, and embedded
//! CSRD-style indicator tables — plus byte-accurate ground truth for every
//! planted objective.
//!
//! Where [`documents`](crate::documents) generates a *block list* (the
//! detection benchmark's unit), this module generates the *raw text* a real
//! ingestion front-end would receive, so `gs-ingest` parsing, block-level
//! sentence segmentation, and provenance threading can all be evaluated
//! end-to-end: every [`GroundTruthSpan`] records exactly which bytes of the
//! report state an objective.
//!
//! Objectives are planted three ways, cycling deterministically:
//! - **bullets**, roughly half stripped of their terminal period (the
//!   list-fusion regression class — flat segmentation would fuse these);
//! - **paragraph tails**, after a boilerplate sentence in the same
//!   paragraph (exercises intra-block sentence splitting);
//! - **table Target cells**, beside indicator-name and numeric-baseline
//!   cells that must *not* be detected.

use crate::banks;
use crate::grammar::{GrammarConfig, ObjectiveGrammar};
use gs_core::Annotations;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How planted objective texts are produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ObjectiveStyle {
    /// The clean `"{Verb} {thing} by {pct}% by {year}."` template family
    /// (matches the golden extractor's training distribution, so frozen
    /// models extract from these texts).
    Template,
    /// The full compositional grammar with distractors (§5.3 difficulty).
    Grammar(GrammarConfig),
}

/// Full-report generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FullReportConfig {
    /// Number of top-level sections.
    pub sections: usize,
    /// Objectives planted in bullets and paragraphs (tables add more).
    pub objectives: usize,
    /// Number of embedded indicator tables.
    pub tables: usize,
    /// Indicator rows per table; each row's Target cell is one objective.
    pub table_rows: usize,
    /// Objective text style.
    pub style: ObjectiveStyle,
}

impl Default for FullReportConfig {
    fn default() -> Self {
        FullReportConfig {
            sections: 4,
            objectives: 10,
            tables: 1,
            table_rows: 5,
            style: ObjectiveStyle::Template,
        }
    }
}

/// Where a planted objective sits in the report layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruthPlacement {
    /// A `- ` bullet item (possibly without terminal punctuation).
    Bullet,
    /// The final sentence of a boilerplate paragraph.
    Paragraph,
    /// A Target cell of an indicator table.
    TableCell,
}

/// One planted objective with its exact byte range in the report text.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruthSpan {
    /// The objective text exactly as written into the report.
    pub text: String,
    /// Byte range `[start, end)` of `text` within [`FullReport::text`].
    pub span: (usize, usize),
    /// Component-level annotations for the detail extractor.
    pub truth: Annotations,
    /// Layout position.
    pub placement: TruthPlacement,
}

/// A generated report: raw text plus ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FullReport {
    /// Owning company.
    pub company: String,
    /// Report title (also the top-level heading).
    pub title: String,
    /// The raw semi-structured report text.
    pub text: String,
    /// Every planted objective, in document order.
    pub truths: Vec<GroundTruthSpan>,
}

impl FullReport {
    /// Number of planted objectives.
    pub fn num_truths(&self) -> usize {
        self.truths.len()
    }
}

const TEMPLATE_VERBS: &[&str] = &["Reduce", "Cut", "Lower", "Decrease", "Trim", "Shrink"];
const TEMPLATE_THINGS: &[&str] = &["emissions", "waste", "usage", "consumption", "footprint"];

/// One objective text plus annotations, in the configured style.
fn make_objective(
    style: &ObjectiveStyle,
    grammar: Option<&ObjectiveGrammar>,
    id: u64,
    rng: &mut StdRng,
) -> (String, Annotations) {
    match style {
        ObjectiveStyle::Template => {
            let v = *TEMPLATE_VERBS.choose(rng).expect("bank");
            let t = *TEMPLATE_THINGS.choose(rng).expect("bank");
            let pct = rng.random_range(5..95);
            let year = rng.random_range(2025..2045);
            let text = format!("{v} {t} by {pct}% by {year}.");
            let truth = Annotations::new()
                .with("Action", v)
                .with("Qualifier", t)
                .with("Amount", &format!("{pct}%"))
                .with("Deadline", &year.to_string());
            (text, truth)
        }
        ObjectiveStyle::Grammar(_) => {
            let g = grammar.expect("grammar built for Grammar style").generate(id, rng);
            (g.objective.text, g.truth)
        }
    }
}

/// Append-only report writer that records truth spans as it goes.
struct Writer {
    text: String,
    truths: Vec<GroundTruthSpan>,
}

impl Writer {
    fn push(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Writes `text` and records it as ground truth at its exact offsets.
    fn push_truth(&mut self, text: &str, truth: Annotations, placement: TruthPlacement) {
        let start = self.text.len();
        self.text.push_str(text);
        self.truths.push(GroundTruthSpan {
            text: text.to_string(),
            span: (start, self.text.len()),
            truth,
            placement,
        });
    }

    fn noise_paragraph(&mut self, sentences: usize, rng: &mut StdRng) {
        for i in 0..sentences.max(1) {
            if i > 0 {
                self.push(" ");
            }
            self.push(banks::NOISE_BLOCKS.choose(rng).expect("bank"));
        }
        self.push("\n\n");
    }
}

/// Generates one full report. Deterministic given the rng state.
pub fn generate_full_report(
    company: &str,
    title: &str,
    config: &FullReportConfig,
    rng: &mut StdRng,
) -> FullReport {
    let grammar = match &config.style {
        ObjectiveStyle::Grammar(g) => Some(ObjectiveGrammar::new(g.clone())),
        ObjectiveStyle::Template => None,
    };
    let mut next_id = 0u64;
    let mut objective = |rng: &mut StdRng| {
        let out = make_objective(&config.style, grammar.as_ref(), next_id, rng);
        next_id += 1;
        out
    };

    let mut w = Writer { text: String::new(), truths: Vec::new() };
    w.push(&format!("# {title}\n\n"));
    w.noise_paragraph(2, rng);

    let sections = config.sections.max(1);
    // Distribute bullet/paragraph objectives across sections, round-robin.
    let mut per_section = vec![0usize; sections];
    for i in 0..config.objectives {
        per_section[i % sections] += 1;
    }
    let mut tables_left = config.tables;
    let mut planted = 0usize;

    for s in 0..sections {
        let section_title = banks::SECTION_TITLES[s % banks::SECTION_TITLES.len()];
        w.push(&format!("## {section_title}\n\n"));
        w.noise_paragraph(1, rng);

        let mut in_section = per_section[s];
        // One objective rides as a paragraph tail after boilerplate.
        if in_section > 0 && planted % 3 == 2 {
            let (text, truth) = objective(rng);
            w.push(banks::NOISE_BLOCKS.choose(rng).expect("bank"));
            w.push(" ");
            w.push_truth(&text, truth, TruthPlacement::Paragraph);
            w.push("\n\n");
            in_section -= 1;
            planted += 1;
        }
        if in_section > 0 {
            w.push("### Targets\n\n");
            for b in 0..in_section {
                let (mut text, truth) = objective(rng);
                // Half the bullets lose their period: layout is the only
                // thing separating them from the next item.
                if b % 2 == 1 {
                    if let Some(stripped) = text.strip_suffix('.') {
                        text = stripped.to_string();
                    }
                }
                w.push("- ");
                w.push_truth(&text, truth, TruthPlacement::Bullet);
                w.push("\n");
                planted += 1;
            }
            w.push("\n");
        }
        if tables_left > 0 {
            tables_left -= 1;
            w.push("### Indicators\n\n");
            w.push("| Indicator | Target | Baseline |\n");
            w.push("| --- | --- | --- |\n");
            for r in 0..config.table_rows.max(1) {
                let indicator = banks::INDICATOR_NAMES[(s + r * 7) % banks::INDICATOR_NAMES.len()];
                let (text, truth) = objective(rng);
                let baseline = format!("2019: {}", rng.random_range(100..100_000));
                w.push(&format!("| {indicator} | "));
                w.push_truth(&text, truth, TruthPlacement::TableCell);
                w.push(&format!(" | {baseline} |\n"));
            }
            w.push("\n");
        }
    }
    w.noise_paragraph(1, rng);
    let text = w.text.trim_end().to_string() + "\n";
    FullReport { company: company.to_string(), title: title.to_string(), text, truths: w.truths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn generate(seed: u64) -> FullReport {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_full_report("Acme Corp", "CSR Report 2026", &FullReportConfig::default(), &mut rng)
    }

    #[test]
    fn truth_spans_slice_back_to_their_text() {
        let report = generate(7);
        assert_eq!(report.num_truths(), 10 + 5, "bullet/paragraph + table objectives");
        for t in &report.truths {
            assert_eq!(&report.text[t.span.0..t.span.1], t.text, "{:?}", t.placement);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, b) = (generate(11), generate(11));
        assert_eq!(a.text, b.text);
        assert_eq!(a.truths.len(), b.truths.len());
    }

    #[test]
    fn plants_all_three_placements() {
        let report = generate(3);
        for placement in
            [TruthPlacement::Bullet, TruthPlacement::Paragraph, TruthPlacement::TableCell]
        {
            assert!(
                report.truths.iter().any(|t| t.placement == placement),
                "missing {placement:?}"
            );
        }
        assert!(
            report
                .truths
                .iter()
                .any(|t| t.placement == TruthPlacement::Bullet && !t.text.ends_with('.')),
            "some bullets must lack terminal punctuation"
        );
    }

    #[test]
    fn grammar_style_uses_the_compositional_generator() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = FullReportConfig {
            style: ObjectiveStyle::Grammar(GrammarConfig::default()),
            ..FullReportConfig::default()
        };
        let report = generate_full_report("Acme", "ESG", &config, &mut rng);
        assert_eq!(report.num_truths(), 15);
        for t in &report.truths {
            assert_eq!(&report.text[t.span.0..t.span.1], t.text);
        }
    }
}
