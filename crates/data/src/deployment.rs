//! Post-deployment corpus at the paper's Table 5 scale: 14 companies,
//! 380 documents, 37,871 pages, 3,580 extracted objectives.

use crate::documents::{generate_report, Report, ReportConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompanyProfile {
    /// Anonymized company label (C1..C14).
    pub name: &'static str,
    /// Number of sustainability documents.
    pub documents: usize,
    /// Total pages across documents.
    pub pages: usize,
    /// Objectives GoalSpotter extracted.
    pub objectives: usize,
}

/// The paper's Table 5, verbatim.
pub const TABLE5: &[CompanyProfile] = &[
    CompanyProfile { name: "C1", documents: 20, pages: 2131, objectives: 150 },
    CompanyProfile { name: "C2", documents: 18, pages: 3172, objectives: 642 },
    CompanyProfile { name: "C3", documents: 41, pages: 3560, objectives: 447 },
    CompanyProfile { name: "C4", documents: 19, pages: 2488, objectives: 102 },
    CompanyProfile { name: "C5", documents: 17, pages: 1298, objectives: 113 },
    CompanyProfile { name: "C6", documents: 29, pages: 3278, objectives: 343 },
    CompanyProfile { name: "C7", documents: 23, pages: 2208, objectives: 247 },
    CompanyProfile { name: "C8", documents: 22, pages: 5012, objectives: 764 },
    CompanyProfile { name: "C9", documents: 64, pages: 4791, objectives: 379 },
    CompanyProfile { name: "C10", documents: 16, pages: 1202, objectives: 79 },
    CompanyProfile { name: "C11", documents: 17, pages: 1229, objectives: 95 },
    CompanyProfile { name: "C12", documents: 64, pages: 1721, objectives: 71 },
    CompanyProfile { name: "C13", documents: 18, pages: 3250, objectives: 105 },
    CompanyProfile { name: "C14", documents: 12, pages: 2531, objectives: 43 },
];

/// Paper totals for Table 5.
pub const TABLE5_TOTALS: CompanyProfile =
    CompanyProfile { name: "Total", documents: 380, pages: 37871, objectives: 3580 };

/// The generated deployment corpus: every company's reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeploymentCorpus {
    /// All reports, grouped by company in Table 5 order.
    pub reports: Vec<Report>,
}

impl DeploymentCorpus {
    /// Total page count.
    pub fn num_pages(&self) -> usize {
        self.reports.iter().map(|r| r.pages.len()).sum()
    }

    /// Total ground-truth objective count.
    pub fn num_objectives(&self) -> usize {
        self.reports.iter().map(Report::num_objectives).sum()
    }

    /// Reports of one company.
    pub fn company_reports(&self, name: &str) -> Vec<&Report> {
        self.reports.iter().filter(|r| r.company == name).collect()
    }
}

/// Generates the corpus at a fraction of the paper's scale (`scale` = 1.0
/// reproduces Table 5 exactly; smaller values shrink pages/objectives
/// proportionally for quick runs, with documents kept >= 1).
pub fn generate_corpus(scale: f64, seed: u64) -> DeploymentCorpus {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let config = ReportConfig::default();
    let mut reports = Vec::new();
    for profile in TABLE5 {
        let documents = ((profile.documents as f64 * scale).round() as usize).max(1);
        let pages = ((profile.pages as f64 * scale).round() as usize).max(documents);
        let objectives = ((profile.objectives as f64 * scale).round() as usize).max(1);
        // Distribute pages and objectives across documents.
        let mut doc_pages = distribute(pages, documents, &mut rng);
        let mut doc_objectives = distribute(objectives, documents, &mut rng);
        for d in 0..documents {
            let title = format!("{} Sustainability Report {}", profile.name, 2015 + (d % 10));
            reports.push(generate_report(
                profile.name,
                &title,
                doc_pages.pop().expect("doc pages"),
                doc_objectives.pop().expect("doc objectives"),
                &config,
                &mut rng,
            ));
        }
    }
    DeploymentCorpus { reports }
}

/// Randomly distributes `total` units across `bins` bins, each >= share/2,
/// summing exactly to `total`.
fn distribute(total: usize, bins: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(bins > 0);
    let base = total / bins;
    let mut out = vec![base; bins];
    let mut remainder = total - base * bins;
    while remainder > 0 {
        let i = rng.random_range(0..bins);
        out[i] += 1;
        remainder -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_totals_are_consistent() {
        let docs: usize = TABLE5.iter().map(|p| p.documents).sum();
        let pages: usize = TABLE5.iter().map(|p| p.pages).sum();
        let objectives: usize = TABLE5.iter().map(|p| p.objectives).sum();
        assert_eq!(docs, TABLE5_TOTALS.documents);
        assert_eq!(pages, TABLE5_TOTALS.pages);
        assert_eq!(objectives, TABLE5_TOTALS.objectives);
    }

    #[test]
    fn small_scale_corpus_matches_profile_shape() {
        let corpus = generate_corpus(0.02, 7);
        assert_eq!(
            corpus
                .reports
                .iter()
                .map(|r| r.company.clone())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            14
        );
        assert!(corpus.num_objectives() >= 14, "every company contributes");
    }

    #[test]
    fn full_scale_reproduces_table5_counts() {
        // Generating 37k pages is heavy; spot-check with a moderate scale
        // that rounding keeps totals within 2%.
        let scale = 0.1;
        let corpus = generate_corpus(scale, 3);
        let expected_pages = (TABLE5_TOTALS.pages as f64 * scale) as usize;
        let pages = corpus.num_pages();
        let rel_err = (pages as f64 - expected_pages as f64).abs() / expected_pages as f64;
        assert!(rel_err < 0.05, "pages {pages} vs expected ~{expected_pages}");
    }

    #[test]
    fn distribute_sums_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let parts = distribute(103, 7, &mut rng);
        assert_eq!(parts.iter().sum::<usize>(), 103);
        assert_eq!(parts.len(), 7);
    }

    #[test]
    fn company_reports_filters() {
        let corpus = generate_corpus(0.02, 7);
        let c3 = corpus.company_reports("C3");
        assert!(!c3.is_empty());
        assert!(c3.iter().all(|r| r.company == "C3"));
    }
}
