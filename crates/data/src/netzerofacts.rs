//! The *NetZeroFacts*-sim dataset.
//!
//! Stands in for the NetZeroFacts benchmark (Wrzalik et al. 2024): emission
//! goal passages from climate-related business reports, of which the paper
//! extracts 599 sentences annotated with labels such as *target value*,
//! *reference year*, and *target year* (§4.1). Real NetZeroFacts passages
//! are messier than curated objectives — multiple years per sentence
//! (interim + final targets, reporting years), varied reference-year
//! phrasing, and surrounding narrative — and the paper's scores on it are
//! correspondingly lower. The generator reproduces that difficulty profile:
//! the annotated target is the sentence's *primary* goal, while interim
//! targets and reporting years act as distractors.

use crate::banks;
use crate::dataset::Dataset;
use gs_core::{Annotations, Objective};
use gs_text::labels::LabelSet;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use rand::SeedableRng;

/// Number of annotated sentences the paper extracts.
pub const PAPER_SIZE: usize = 599;

/// Generates `n` annotated emission-goal sentences.
pub fn generate(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objectives = (0..n).map(|i| generate_sentence(i as u64, &mut rng)).collect();
    Dataset { name: "NetZeroFacts".into(), labels: LabelSet::netzerofacts(), objectives }
}

/// Generates the dataset at the paper's size.
pub fn generate_paper_scale(seed: u64) -> Dataset {
    generate(PAPER_SIZE, seed)
}

/// Generates the surrounding passage pool: `n_noise` non-goal passages, for
/// detection-stage experiments.
pub fn generate_noise_passages(n_noise: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_noise)
        .map(|_| (*banks::NOISE_BLOCKS.choose(&mut rng).expect("bank")).to_string())
        .collect()
}

fn generate_sentence(id: u64, rng: &mut StdRng) -> Objective {
    let subject = *banks::EMISSION_SUBJECTS.choose(rng).expect("bank");
    let target_year: u32 = rng.random_range(2028..=2055);
    let reference_year: u32 = rng.random_range(2005..=2022);
    let has_reference = rng.random_bool(0.55);

    let mut clauses: Vec<String> = Vec::new();

    // Leading narrative (with possible distractor year/percent).
    if rng.random_bool(0.45) {
        let lead = [
            "As part of our climate transition plan,",
            "Following the commitments made in {Y},",
            "Having reduced {S2} by {P} since {Y},",
            "After already cutting {S2} by {P} from {Y},",
            "Moving beyond our earlier pledge to cut {S2} by {P} by {Y1},",
            "Replacing the previous target to reduce {S2} by {P} by {Y1},",
        ]
        .choose(rng)
        .expect("leads");
        let y = rng.random_range(2015..=2023).to_string();
        let y1 = rng.random_range(2024..=2045).to_string();
        let p = format!("{}%", rng.random_range(5..=95));
        let s2 = *banks::EMISSION_SUBJECTS.choose(rng).expect("bank");
        clauses.push(
            lead.replacen("{Y}", &y, 2)
                .replacen("{Y1}", &y1, 1)
                .replacen("{P}", &p, 1)
                .replacen("{S2}", s2, 1),
        );
    }

    // Primary goal: percentage reduction or net-zero commitment.
    let (core, target_value): (String, String) = if rng.random_bool(0.65) {
        let value = format!("{}%", rng.random_range(5..=95));
        let verb = [
            "reduce",
            "cut",
            "lower",
            "decrease",
            "we aim to reduce",
            "we will reduce",
            "the Group intends to reduce",
        ]
        .choose(rng)
        .expect("verbs");
        let frame =
            ["{V} {S} by {VAL} by {TY}", "{V} {S} {VAL} by {TY}", "by {TY}, {V} {S} by {VAL}"]
                .choose(rng)
                .expect("frames");
        let core = frame
            .replacen("{V}", verb, 1)
            .replacen("{S}", subject, 1)
            .replacen("{VAL}", &value, 1)
            .replacen("{TY}", &target_year.to_string(), 1);
        (capitalize(&core), value)
    } else {
        let value = ["net zero", "net-zero", "carbon neutrality", "climate neutrality"]
            .choose(rng)
            .expect("values")
            .to_string();
        let frame = [
            "We are committed to reaching {VAL} {S} by {TY}",
            "Achieve {VAL} across {S} by {TY}",
            "Our ambition is {VAL} {S} no later than {TY}",
            "The company targets {VAL} for {S} by {TY}",
        ]
        .choose(rng)
        .expect("frames");
        let core = frame.replacen("{VAL}", &value, 1).replacen("{S}", subject, 1).replacen(
            "{TY}",
            &target_year.to_string(),
            1,
        );
        (core, value)
    };
    clauses.push(core);

    // Reference year in one of several phrasings.
    let mut reference_in_text = false;
    if has_reference {
        let frame = [
            "compared to {}",
            "against a {} baseline",
            "from {} levels",
            "relative to {}",
            "versus the {} base year",
            "from a {} base year",
        ]
        .choose(rng)
        .expect("frames");
        clauses.push(frame.replacen("{}", &reference_year.to_string(), 1));
        reference_in_text = true;
    }

    // Interim-target distractor: a second (value, year) pair that is NOT
    // the annotated primary target. The "by {P} by {Y}" phrasings create
    // windows locally identical to the primary goal's.
    if rng.random_bool(0.45) {
        let interim_pct = format!("{}%", rng.random_range(5..=95));
        let interim_year = rng.random_range(2024..=target_year.saturating_sub(1).max(2024));
        let frame = [
            "with an interim milestone of {P} by {Y}",
            "after first cutting emissions by {P} by {Y}",
            "including an intermediate reduction by {P} by {Y}",
            "after an initial {P} reduction planned for {Y}",
        ]
        .choose(rng)
        .expect("frames");
        clauses.push(frame.replacen("{P}", &interim_pct, 1).replacen(
            "{Y}",
            &interim_year.to_string(),
            1,
        ));
    }

    // Trailing narrative distractor.
    if rng.random_bool(0.3) {
        let frame = [
            "as validated by the SBTi in {}",
            "as disclosed in our {} CDP response",
            "first announced at the {} capital markets day",
        ]
        .choose(rng)
        .expect("frames");
        let y = rng.random_range(2018..=2023).to_string();
        clauses.push(frame.replacen("{}", &y, 1));
    }

    let mut text = clauses.join(" ");
    text.push('.');

    let mut ann = Annotations::new();
    ann.set("TargetValue", &target_value);
    ann.set("TargetYear", &target_year.to_string());
    let reference_value =
        if reference_in_text { reference_year.to_string() } else { String::new() };
    ann.set("ReferenceYear", &reference_value);
    Objective::annotated(id, text, ann)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(f) => f.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_599_sentences() {
        let d = generate_paper_scale(1);
        assert_eq!(d.len(), PAPER_SIZE);
        assert_eq!(d.labels.num_kinds(), 3);
    }

    #[test]
    fn every_sentence_has_a_target_value_and_year() {
        let d = generate(150, 4);
        for o in &d.objectives {
            let ann = o.annotations.as_ref().expect("annotated");
            let tv = ann.get("TargetValue").expect("value present");
            let ty = ann.get("TargetYear").expect("year present");
            assert!(!tv.is_empty());
            assert!(!ty.is_empty());
            assert!(o.text.contains(tv), "{tv:?} not in {:?}", o.text);
            assert!(o.text.contains(ty), "{ty:?} not in {:?}", o.text);
        }
    }

    #[test]
    fn reference_year_annotation_matches_text() {
        let d = generate(300, 5);
        let mut with_ref = 0;
        for o in &d.objectives {
            let ann = o.annotations.as_ref().expect("annotated");
            if let Some(ry) = ann.get("ReferenceYear") {
                if !ry.is_empty() {
                    with_ref += 1;
                    assert!(o.text.contains(ry));
                }
            }
        }
        assert!(with_ref > 100 && with_ref < 220, "reference-year count {with_ref}");
    }

    #[test]
    fn distractor_years_are_common() {
        let d = generate(500, 9);
        let year_count = |text: &str| {
            gs_text::pretokenize(text)
                .iter()
                .filter(|t| {
                    t.text.len() == 4
                        && t.text.chars().all(|c| c.is_ascii_digit())
                        && (t.text.starts_with("19") || t.text.starts_with("20"))
                })
                .count()
        };
        let multi_year = d
            .objectives
            .iter()
            .filter(|o| {
                let ann = o.annotations.as_ref().expect("annotated");
                let annotated_years = usize::from(!ann.get("TargetYear").unwrap_or("").is_empty())
                    + usize::from(!ann.get("ReferenceYear").unwrap_or("").is_empty());
                year_count(&o.text) > annotated_years
            })
            .count();
        let frac = multi_year as f64 / d.len() as f64;
        assert!(frac > 0.3, "too few distractor years: {frac}");
    }

    #[test]
    fn noise_passages_are_generated() {
        let noise = generate_noise_passages(50, 1);
        assert_eq!(noise.len(), 50);
        assert!(noise.iter().all(|p| !p.is_empty()));
    }
}
