//! Unlabeled in-domain corpora for masked-language-model pretraining.
//!
//! These stand in for the large body of sustainability-report text the
//! paper's pretrained encoders have absorbed. Texts are generated from the
//! same grammars as the labeled datasets but with independent seeds, and no
//! annotations are exposed — the pretraining stage never sees extraction
//! labels.

use crate::banks;
use crate::grammar::{GrammarConfig, ObjectiveGrammar};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

/// Unlabeled sustainability-objective + boilerplate corpus for the
/// *Sustainability Goals* domain.
pub fn sustaingoals_corpus(n: usize, seed: u64) -> Vec<String> {
    let grammar = ObjectiveGrammar::new(GrammarConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i % 4 == 3 {
            out.push((*banks::NOISE_BLOCKS.choose(&mut rng).expect("bank")).to_string());
        } else {
            out.push(grammar.generate(i as u64, &mut rng).objective.text);
        }
    }
    out
}

/// Unlabeled emission-goal + boilerplate corpus for the *NetZeroFacts*
/// domain.
pub fn netzerofacts_corpus(n: usize, seed: u64) -> Vec<String> {
    let goals = crate::netzerofacts::generate(n - n / 4, seed);
    let mut out: Vec<String> = goals.objectives.into_iter().map(|o| o.text).collect();
    out.extend(crate::netzerofacts::generate_noise_passages(n / 4, seed.wrapping_add(1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_have_requested_sizes() {
        assert_eq!(sustaingoals_corpus(100, 1).len(), 100);
        assert_eq!(netzerofacts_corpus(100, 1).len(), 100);
    }

    #[test]
    fn corpora_are_deterministic_and_seeded() {
        assert_eq!(sustaingoals_corpus(20, 5), sustaingoals_corpus(20, 5));
        assert_ne!(sustaingoals_corpus(20, 5), sustaingoals_corpus(20, 6));
    }

    #[test]
    fn corpus_mixes_objectives_and_noise() {
        let corpus = sustaingoals_corpus(40, 2);
        let noise: Vec<&String> =
            corpus.iter().filter(|t| banks::NOISE_BLOCKS.contains(&t.as_str())).collect();
        assert!(!noise.is_empty());
        assert!(noise.len() < corpus.len());
    }
}
