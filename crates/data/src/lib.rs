//! # gs-data
//!
//! Synthetic corpora standing in for the paper's evaluation data (see
//! DESIGN.md for the substitution rationale):
//!
//! - [`sustaingoals`]: the proprietary *Sustainability Goals* dataset
//!   (1106 objectives, five fields, paper-matched coverage imbalance).
//! - [`netzerofacts`]: the *NetZeroFacts* emission-goal benchmark
//!   (599 annotated sentences, three fields).
//! - [`documents`] / [`deployment`]: the report/page/block document model
//!   and the 14-company post-deployment corpus of Table 5.
//! - [`fullreport`]: whole semi-structured report texts (sections, bullet
//!   lists, indicator tables) with byte-accurate objective ground truth,
//!   for exercising the `gs-ingest` front-end.
//! - [`grammar`]: the compositional objective generator both datasets use.

#![warn(missing_docs)]

pub mod banks;
pub mod dataset;
pub mod deployment;
pub mod documents;
pub mod fullreport;
pub mod grammar;
pub mod netzerofacts;
pub mod sustaingoals;
pub mod unlabeled;

pub use dataset::Dataset;
pub use grammar::{FieldRates, GeneratedObjective, GrammarConfig, ObjectiveGrammar};
