//! The *Sustainability Goals*-sim dataset.
//!
//! Stands in for the paper's proprietary dataset of 1106 sustainability
//! objectives collected from 718 reports of 422 companies, annotated with
//! the five key fields (§4.1). The generator reproduces the properties the
//! paper reports: five-field annotation, strong per-field imbalance
//! (Action 85%, Baseline 14%, Deadline 34%), heterogeneous phrasing, and
//! imperfect annotations.

use crate::dataset::Dataset;
use crate::grammar::{GrammarConfig, ObjectiveGrammar};
use gs_text::labels::LabelSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper-reported dataset size.
pub const PAPER_SIZE: usize = 1106;

/// Generates the Sustainability Goals-sim dataset with `n` objectives.
pub fn generate(n: usize, seed: u64) -> Dataset {
    generate_with_config(n, seed, GrammarConfig::default())
}

/// Generates with a custom grammar configuration (used by ablations).
pub fn generate_with_config(n: usize, seed: u64, config: GrammarConfig) -> Dataset {
    let grammar = ObjectiveGrammar::new(config);
    let mut rng = StdRng::seed_from_u64(seed);
    let objectives = (0..n).map(|i| grammar.generate(i as u64, &mut rng).objective).collect();
    Dataset {
        name: "Sustainability Goals".into(),
        labels: LabelSet::sustainability_goals(),
        objectives,
    }
}

/// Generates the dataset at the paper's size.
pub fn generate_paper_scale(seed: u64) -> Dataset {
    generate(PAPER_SIZE, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_1106_objectives() {
        let d = generate_paper_scale(1);
        assert_eq!(d.len(), PAPER_SIZE);
        assert_eq!(d.labels.num_kinds(), 5);
    }

    #[test]
    fn all_objectives_are_annotated() {
        let d = generate(200, 2);
        assert!(d.objectives.iter().all(|o| o.annotations.is_some()));
    }

    #[test]
    fn objectives_are_heterogeneous() {
        let d = generate(200, 3);
        let unique: std::collections::HashSet<&String> =
            d.objectives.iter().map(|o| &o.text).collect();
        assert!(unique.len() > 190, "only {} unique texts", unique.len());
    }
}
