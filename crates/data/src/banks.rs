//! Phrase banks for the synthetic sustainability corpora.
//!
//! The banks are distilled from the surface forms visible in the paper's own
//! examples (Tables 1, 6, 7) and from common ESG reporting language, so that
//! generated objectives are heterogeneous in the same ways the paper
//! describes: varied verb forms, relative and absolute amounts, noun-phrase
//! qualifiers of different lengths, and several syntactic frames for
//! baseline/deadline years.

/// Action verbs in the exact surface form they appear with in templates.
/// Multiple inflections of the same lemma create the heterogeneity the
/// paper's §3.2 mentions.
pub const ACTIONS: &[&str] = &[
    "Reduce",
    "reduce",
    "Achieve",
    "achieve",
    "Reach",
    "reach",
    "Restore",
    "Eliminate",
    "Increase",
    "increase",
    "Cut",
    "Expand",
    "Implement",
    "implement",
    "Transition",
    "Promote",
    "Install",
    "install",
    "Substitute",
    "Double",
    "Decrease",
    "Lower",
    "Improve",
    "Divert",
    "Recycle",
    "Source",
    "Procure",
    "Offset",
    "Phase out",
    "Scale up",
    "will reduce",
    "will install",
    "will achieve",
    "will be implemented",
    "Integrate",
    "Align",
    "Empower",
    "Join",
    "Define",
    "Perform",
    "Explore",
    "Demonstrate",
    "Share",
    "Make",
    "Keep",
    "Uses",
];

/// Relative and absolute amount expressions.
pub const AMOUNTS: &[&str] = &[
    "20%",
    "30%",
    "50%",
    "100%",
    "10%",
    "5%",
    "25%",
    "40%",
    "15%",
    "75%",
    "8.1%",
    "net-zero",
    "net zero",
    "zero",
    "Zero",
    "double",
    "half",
    "1 million",
    "100 million",
    "250",
    "10 million",
    "25 percent",
    "50 percent",
    "100 percent",
    "two-thirds",
    "one third",
    "90%",
    "65%",
    "one million tonnes",
    "500,000",
    "all",
];

/// Qualifier noun phrases (the "what is changing" of an objective).
pub const QUALIFIERS: &[&str] = &[
    "energy consumption",
    "carbon emissions",
    "greenhouse gas emissions",
    "scope 1 and 2 emissions",
    "scope 3 emissions",
    "global water use",
    "potable water intensity",
    "water withdrawal",
    "landfill waste",
    "waste to landfill",
    "single-use plastics",
    "single-use beverages per seated headcount",
    "renewable electricity",
    "renewable energy sourcing",
    "recyclable packaging",
    "plastic packaging",
    "F-gases",
    "fleet fuel consumption",
    "supply chain emissions",
    "paper usage",
    "food waste",
    "women in leadership positions",
    "representation of women in key leadership roles",
    "employee volunteering hours",
    "smallholder farmers",
    "biodiversity protection measures",
    "sustainable sourcing",
    "environmental efficiency",
    "air freight emissions",
    "district heating coverage",
    "electric vehicles in our fleet",
    "energy- and money-saving thermostats",
    "PCR content in bottles",
    "water saving programs",
    "green building certifications",
    "community investment",
    "training hours per employee",
    "supplier audits",
    "carbon intensity per product",
    "packaging weight",
    "methane leakage",
];

/// Baseline-year syntactic frames; `{}` is replaced by the year.
pub const BASELINE_FRAMES: &[&str] = &[
    "(baseline {})",
    "against a {} baseline",
    "compared to {}",
    "from {} levels",
    "relative to {}",
    "versus our {} footprint",
    "(vs. {})",
];

/// Deadline-year syntactic frames; `{}` is replaced by the year.
pub const DEADLINE_FRAMES: &[&str] =
    &["by {}", "by the end of {}", "before {}", "no later than {}", "by FY{}"];

/// Objective sentence prefixes that add heterogeneous context.
pub const PREFIXES: &[&str] = &[
    "We are committed to",
    "We co-founded The Climate Pledge, a commitment to",
    "As part of our climate strategy, we will",
    "Our company pledges to",
    "The Group aims to",
    "We have set a target to",
    "Our ambition is to",
    "In line with the Paris Agreement, we intend to",
    "Building on last year's progress, we plan to",
    "Together with our suppliers, we commit to",
];

/// Trailing context clauses that do not change the gold fields but add the
/// distractor numbers/years that make extraction non-trivial.
pub const SUFFIX_DISTRACTORS: &[&str] = &[
    "as stated in our {} annual report",
    "as first announced in {}",
    "following the roadmap published in {}",
    "as audited by a third party in {}",
    "consistent with the {} materiality assessment",
];

/// Distractor clauses carrying a percentage that is NOT the objective's
/// amount; `{}` is replaced by the percent value. These create the
/// role-ambiguity that separates contextual models from surface-pattern
/// extractors.
/// `{q}` is a qualifier-distribution noun phrase and `{p}` a percent drawn
/// from the same distribution as gold amounts, so the clause is locally and
/// lexically identical to a real target mention — only the subordinate
/// clause structure reveals it is not the objective's target.
pub const PCT_DISTRACTORS_PRE: &[&str] = &[
    "Having already reduced {q} by {p} in recent years,",
    "After trimming {q} by {p} last year,",
    "Having improved {q} by {p} since the program began,",
    "With {q} representing {p} of group revenue,",
    "Building on the {p} improvement achieved so far,",
];

/// Percentage distractors appended after the core clause.
pub const PCT_DISTRACTORS_POST: &[&str] = &[
    "while sister programs cut {q} by {p}",
    "after peers achieved reductions of {p}",
    "which accounts for {p} of our footprint",
    "representing {p} of total spend",
    "currently at {p} completion",
];

/// Superseded-commitment lead clauses: a FULL earlier target (qualifier,
/// "by {p}", "by {y}") that is no longer the objective. The token windows
/// around `{p}` and `{y}` are identical to the live target's windows; only
/// the clause-initial marker ("Having pledged...", "Moving beyond...") and
/// trailing cue ("in an earlier plan") — both outside a +-2 feature window —
/// reveal the role.
pub const SUPERSEDED_LEADS: &[&str] = &[
    "Having pledged to cut {q} by {p} by {y} in an earlier plan,",
    "Moving beyond our previous target to reduce {q} by {p} by {y},",
    "Replacing the earlier commitment to lower {q} by {p} by {y},",
    "Updating the plan that aimed to cut {q} by {p} by {y},",
    // Variants with a baseline-cue year, so baseline mentions are also
    // role-ambiguous at the window level.
    "Having pledged to cut {q} by {p} by {y} from {b} levels in an earlier plan,",
    "Moving beyond our previous target to reduce {q} by {p} by {y} (baseline {b}),",
];

/// Verb-bearing distractor clauses: lexicon verbs in non-Action roles.
pub const VERB_DISTRACTORS: &[&str] = &[
    "designed to improve transparency",
    "helping to increase stakeholder trust",
    "while we continue to expand reporting coverage",
    "intended to promote supplier engagement",
    "as we keep working to align disclosures",
];

/// Second-target clauses (paper §5.3: objectives with multiple targets in
/// one sentence partially confuse extraction). `{q}` and `{m}` are replaced
/// by a second qualifier and amount; only the FIRST target is annotated.
pub const SECOND_TARGETS: &[&str] =
    &["and {q} by {m}", "alongside a {m} cut in {q}", "while lowering {q} by {m}"];

/// Second targets carrying their own (unannotated) deadline — "by {m} by
/// {y}" windows locally identical to the primary target's.
pub const SECOND_TARGETS_DATED: &[&str] = &[
    "and {q} by {m} by {y}",
    "while lowering {q} by {m} by {y}",
    "with a further {m} cut in {q} planned by {y}",
];

/// Compositional qualifier modifiers (combined with heads and tails to
/// create a large open vocabulary of qualifiers).
pub const QUALIFIER_MODIFIERS: &[&str] = &[
    "absolute",
    "relative",
    "total",
    "annual",
    "global",
    "regional",
    "operational",
    "upstream",
    "downstream",
    "direct",
    "indirect",
    "net",
    "per-unit",
    "site-level",
];

/// Compositional qualifier heads.
pub const QUALIFIER_HEADS: &[&str] = &[
    "energy consumption",
    "carbon emissions",
    "water withdrawal",
    "waste generation",
    "packaging weight",
    "fleet mileage",
    "electricity demand",
    "methane leakage",
    "material usage",
    "freight emissions",
    "plastic content",
    "chemical discharge",
    "land disturbance",
    "fuel intensity",
    "heat demand",
    "refrigerant losses",
];

/// Compositional qualifier prepositional tails.
pub const QUALIFIER_TAILS: &[&str] = &[
    "from manufacturing sites",
    "across distribution centers",
    "in company-owned stores",
    "from our vehicle fleet",
    "within data operations",
    "from purchased goods",
    "across office buildings",
    "in high-risk regions",
    "from packaging lines",
    "within the supply base",
];

/// Plain suffixes with no year.
pub const SUFFIXES: &[&str] = &[
    "across all operations",
    "across our global sites",
    "for our data center operations",
    "at our Bay Area headquarters",
    "at key suppliers",
    "in all markets where we operate",
    "for all major product lines",
    "throughout the value chain",
];

/// Non-objective noise blocks (report boilerplate), for detection training
/// and document generation.
pub const NOISE_BLOCKS: &[&str] = &[
    "Climate change is one of the world's greatest crises, and to address it, the public and private sectors need to act together.",
    "This report was prepared in accordance with the GRI Standards: Core option.",
    "Reducing carbon emissions in transportation is a complex challenge for many companies.",
    "Businesses also face the challenge of removing carbon emissions from new building construction.",
    "The table below summarizes our governance structure and board committees.",
    "Our materiality assessment engaged over 500 stakeholders across 12 countries.",
    "Forward-looking statements in this document involve risks and uncertainties.",
    "The audit committee reviewed the financial statements for the reporting period.",
    "Figures have been restated to reflect the divestiture completed during the year.",
    "For definitions of key terms, please refer to the glossary in the appendix.",
    "Stakeholder dialogue remains central to how we prioritize sustainability topics.",
    "Our products are sold in more than 90 countries through a network of distributors.",
    "Management discussion and analysis of operational results follows in section four.",
    "Employees completed mandatory compliance training during the onboarding process.",
    "The photograph on the cover shows our apprentices at the Hamburg facility.",
    "Revenue grew moderately while operating expenses remained broadly stable.",
    "An overview of our certifications is provided at the end of this chapter.",
    "We welcome feedback on this report via the contact form on our website.",
];

/// Company-name fragments for synthetic company generation.
pub const COMPANY_HEADS: &[&str] = &[
    "Nordic", "Alpine", "Pacific", "Atlas", "Vertex", "Solstice", "Meridian", "Cascade", "Aurora",
    "Granite", "Harbor", "Summit", "Orchid", "Falcon", "Juniper", "Beacon",
];

/// Company-name suffixes.
pub const COMPANY_TAILS: &[&str] = &[
    "Industries",
    "Group",
    "Holdings",
    "Energy",
    "Foods",
    "Pharma",
    "Logistics",
    "Materials",
    "Retail",
    "Technologies",
    "Chemicals",
    "Mobility",
];

/// Report section titles for full-report generation (`fullreport`).
pub const SECTION_TITLES: &[&str] = &[
    "Climate",
    "Energy",
    "Water Stewardship",
    "Circular Economy",
    "Social Impact",
    "Governance",
    "Supply Chain",
    "Biodiversity",
];

/// CSRD-style indicator names for embedded indicator tables. These look
/// number-and-keyword-dense, which makes them good hard negatives for the
/// detector: an indicator *name* is not an objective, even though the
/// adjacent Target cell usually is.
pub const INDICATOR_NAMES: &[&str] = &[
    "Scope 1 GHG emissions (tCO2e)",
    "Scope 2 GHG emissions, market-based (tCO2e)",
    "Scope 3 upstream emissions (tCO2e)",
    "Energy consumption (MWh)",
    "Renewable electricity share (%)",
    "Water withdrawal (megalitres)",
    "Water discharge quality index",
    "Waste diverted from landfill (%)",
    "Hazardous waste generated (tonnes)",
    "Recycled input materials (%)",
    "Employee turnover rate (%)",
    "Lost-time injury frequency rate",
    "Training hours per employee",
    "Gender pay gap (%)",
    "Board independence ratio",
    "Suppliers screened on ESG criteria (%)",
    "Product carbon intensity (kgCO2e/unit)",
    "Fleet electrification share (%)",
    "Green financing volume (EUR m)",
    "Biodiversity-sensitive sites assessed",
];

/// Emission-goal subjects for the NetZeroFacts-style dataset.
pub const EMISSION_SUBJECTS: &[&str] = &[
    "CO2 emissions",
    "carbon emissions",
    "greenhouse gas emissions",
    "absolute scope 1 emissions",
    "scope 2 emissions",
    "emission intensity",
    "CO2e per tonne of product",
    "fleet emissions",
    "operational emissions",
    "upstream emissions",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_are_nonempty_and_distinct() {
        for bank in [
            ACTIONS,
            AMOUNTS,
            QUALIFIERS,
            BASELINE_FRAMES,
            DEADLINE_FRAMES,
            PREFIXES,
            SUFFIXES,
            NOISE_BLOCKS,
            EMISSION_SUBJECTS,
            PCT_DISTRACTORS_PRE,
            PCT_DISTRACTORS_POST,
            VERB_DISTRACTORS,
            SECOND_TARGETS,
            SECOND_TARGETS_DATED,
            SUPERSEDED_LEADS,
            QUALIFIER_MODIFIERS,
            QUALIFIER_HEADS,
            QUALIFIER_TAILS,
        ] {
            assert!(!bank.is_empty());
            let set: std::collections::HashSet<&&str> = bank.iter().collect();
            assert_eq!(set.len(), bank.len(), "duplicate entries in a bank");
        }
    }

    #[test]
    fn frames_contain_placeholder() {
        for f in BASELINE_FRAMES.iter().chain(DEADLINE_FRAMES).chain(SUFFIX_DISTRACTORS) {
            assert!(f.contains("{}"), "frame {f:?} missing year placeholder");
        }
    }
}
