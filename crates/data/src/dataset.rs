//! Dataset container and deterministic splits.

use gs_core::Objective;
use gs_text::labels::LabelSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A named collection of (possibly annotated) objectives with a fixed label
/// set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The entity kinds this dataset is annotated with.
    pub labels: LabelSet,
    /// The objectives.
    pub objectives: Vec<Objective>,
}

impl Dataset {
    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Deterministic shuffled train/test split; `test_fraction` of the data
    /// becomes the held-out test set (the paper uses 20%, §4.1).
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Vec<&Objective>, Vec<&Objective>) {
        assert!((0.0..=1.0).contains(&test_fraction), "fraction out of range");
        let mut indices: Vec<usize> = (0..self.objectives.len()).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        let test_len = ((self.objectives.len() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = indices.split_at(test_len);
        let pick = |idx: &[usize]| idx.iter().map(|&i| &self.objectives[i]).collect::<Vec<_>>();
        (pick(train_idx), pick(test_idx))
    }

    /// All objective texts (for tokenizer training).
    pub fn texts(&self) -> Vec<&str> {
        self.objectives.iter().map(|o| o.text.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::Annotations;

    fn tiny_dataset(n: usize) -> Dataset {
        Dataset {
            name: "tiny".into(),
            labels: LabelSet::sustainability_goals(),
            objectives: (0..n)
                .map(|i| {
                    Objective::annotated(i as u64, format!("objective {i}"), Annotations::new())
                })
                .collect(),
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = tiny_dataset(100);
        let (train, test) = d.split(0.2, 5);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let train_ids: std::collections::HashSet<u64> = train.iter().map(|o| o.id).collect();
        for o in &test {
            assert!(!train_ids.contains(&o.id));
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = tiny_dataset(50);
        let (_, t1) = d.split(0.2, 9);
        let (_, t2) = d.split(0.2, 9);
        assert_eq!(
            t1.iter().map(|o| o.id).collect::<Vec<_>>(),
            t2.iter().map(|o| o.id).collect::<Vec<_>>()
        );
        let (_, t3) = d.split(0.2, 10);
        assert_ne!(
            t1.iter().map(|o| o.id).collect::<Vec<_>>(),
            t3.iter().map(|o| o.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_fraction_keeps_everything_in_train() {
        let d = tiny_dataset(10);
        let (train, test) = d.split(0.0, 1);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }
}
