//! The vector-clock happens-before engine.
//!
//! One [`Detector`] instance tracks, for a set of threads:
//!
//! - a per-thread [`VClock`] advanced at every release edge;
//! - a per-mutex clock transferred release→acquire (`unlock` publishes the
//!   holder's clock, the next `lock` joins it);
//! - a per-atomic-location **release clock**: a `Release`/`SeqCst` store
//!   installs the writer's clock, an `Acquire`/`SeqCst` load joins it. A
//!   `Relaxed` store *clears* the location's release clock (the newly
//!   visible value carries no synchronization), while a `Relaxed` RMW
//!   leaves it intact (read-modify-writes continue a release sequence) —
//!   which is exactly what makes "`Relaxed` where `Release` is required"
//!   publication bugs show up as happens-before races downstream;
//! - per *data location* (an annotated non-atomic access, see
//!   [`sync::Probe`](crate::sync) and the model checker's `RawCell`): the
//!   last write epoch and per-thread read epochs, checked FastTrack-style
//!   on every access. Two conflicting accesses with neither
//!   happening-before the other append a [`RaceReport`] carrying both
//!   access sites.
//!
//! The engine runs in two homes: embedded in a model execution (exact — the
//! scheduler serializes every operation), or as the process-global live
//! detector behind [`detecting`] that instruments the *real* pool/store/
//! serve suites (best-effort — concurrent operations are ordered by the
//! detector's own lock, so an extremely tight real race can be recorded in
//! either order; the HB verdict is unaffected because a real race is
//! unordered both ways).

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::clock::VClock;

/// A `'static` source location, threaded through by `#[track_caller]`.
pub type Loc = &'static Location<'static>;

/// Whether `ordering` has acquire semantics on a load / the load half of an
/// RMW.
pub fn acquires(ordering: Ordering) -> bool {
    matches!(ordering, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

/// Whether `ordering` has release semantics on a store / the store half of
/// an RMW.
pub fn releases(ordering: Ordering) -> bool {
    matches!(ordering, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One side of a detected race.
#[derive(Clone, Debug)]
pub struct AccessSite {
    /// Detector-local thread id.
    pub tid: usize,
    /// Thread label (model thread name, or the OS thread name live).
    pub thread: String,
    /// `"read"` or `"write"`.
    pub access: &'static str,
    /// Source location of the access.
    pub loc: Loc,
}

impl std::fmt::Display for AccessSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} by T{} [{}] at {}:{}",
            self.access,
            self.tid,
            self.thread,
            self.loc.file(),
            self.loc.line()
        )
    }
}

/// An unsynchronized conflicting access pair: neither side happens-before
/// the other.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Label of the data location (e.g. `"EpochCell.slot"`).
    pub what: &'static str,
    /// The earlier-recorded access.
    pub first: AccessSite,
    /// The access that exposed the race.
    pub second: AccessSite,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "data race on `{}`: {} is unordered with {}", self.what, self.first, self.second)
    }
}

/// Per-data-location access history.
#[derive(Default)]
struct DataState {
    /// Last write: (tid, that thread's own stamp at the write, site).
    last_write: Option<(usize, u32, Loc)>,
    /// Per-thread last read: (stamp, site).
    reads: Vec<Option<(u32, Loc)>>,
}

/// The happens-before engine. See the module docs for semantics.
#[derive(Default)]
pub struct Detector {
    clocks: Vec<VClock>,
    names: Vec<String>,
    locks: HashMap<usize, VClock>,
    atomics: HashMap<usize, VClock>,
    data: HashMap<usize, DataState>,
    races: Vec<RaceReport>,
}

impl Detector {
    /// A fresh engine with no threads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a thread and returns its detector-local id. When `parent`
    /// is given, the child starts with the parent's clock (the spawn edge).
    pub fn register_thread(&mut self, name: &str, parent: Option<usize>) -> usize {
        let tid = self.clocks.len();
        let mut clock = VClock::new();
        if let Some(p) = parent {
            clock.join(&self.clocks[p]);
            self.clocks[p].tick(p);
        }
        clock.tick(tid);
        self.clocks.push(clock);
        self.names.push(name.to_string());
        tid
    }

    /// Number of registered threads.
    pub fn threads(&self) -> usize {
        self.clocks.len()
    }

    /// The join edge: `parent` resumes after `child` finished.
    pub fn join_edge(&mut self, parent: usize, child: usize) {
        let child_clock = self.clocks[child].clone();
        self.clocks[parent].join(&child_clock);
    }

    /// Mutex acquired: the holder inherits everything released under it.
    pub fn lock_acquired(&mut self, tid: usize, addr: usize) {
        if let Some(lc) = self.locks.get(&addr) {
            let lc = lc.clone();
            self.clocks[tid].join(&lc);
        }
    }

    /// Mutex released: publish the holder's clock on the lock.
    pub fn lock_released(&mut self, tid: usize, addr: usize) {
        self.locks.insert(addr, self.clocks[tid].clone());
        self.clocks[tid].tick(tid);
    }

    /// An atomic load at `ordering`.
    pub fn atomic_load(&mut self, tid: usize, addr: usize, ordering: Ordering) {
        if acquires(ordering) {
            if let Some(rc) = self.atomics.get(&addr) {
                let rc = rc.clone();
                self.clocks[tid].join(&rc);
            }
        }
    }

    /// An atomic store at `ordering`. A plain `Relaxed` store clears the
    /// location's release clock: the value now visible was published with
    /// no ordering, so later acquire loads must not inherit the stale edge.
    pub fn atomic_store(&mut self, tid: usize, addr: usize, ordering: Ordering) {
        if releases(ordering) {
            self.atomics.insert(addr, self.clocks[tid].clone());
            self.clocks[tid].tick(tid);
        } else {
            self.atomics.remove(&addr);
        }
    }

    /// An atomic read-modify-write at `ordering`. RMWs continue a release
    /// sequence, so a `Relaxed` RMW leaves the location's release clock in
    /// place (unlike a `Relaxed` store); with release semantics it *merges*
    /// the updater's clock in.
    pub fn atomic_rmw(&mut self, tid: usize, addr: usize, ordering: Ordering) {
        if acquires(ordering) {
            if let Some(rc) = self.atomics.get(&addr) {
                let rc = rc.clone();
                self.clocks[tid].join(&rc);
            }
        }
        if releases(ordering) {
            let clock = self.clocks[tid].clone();
            self.atomics.entry(addr).or_default().join(&clock);
            self.clocks[tid].tick(tid);
        }
    }

    fn site(&self, tid: usize, access: &'static str, loc: Loc) -> AccessSite {
        AccessSite { tid, thread: self.names[tid].clone(), access, loc }
    }

    /// A non-atomic read of data location `addr`. Flags a race against an
    /// unordered earlier write.
    pub fn data_read(&mut self, tid: usize, addr: usize, what: &'static str, loc: Loc) {
        let clock = self.clocks[tid].clone();
        let state = self.data.entry(addr).or_default();
        if let Some((wt, wstamp, wloc)) = state.last_write {
            if wt != tid && !clock.covers(wt, wstamp) {
                let first = AccessSite {
                    tid: wt,
                    thread: self.names[wt].clone(),
                    access: "write",
                    loc: wloc,
                };
                let second = self.site(tid, "read", loc);
                self.races.push(RaceReport { what, first, second });
                return;
            }
        }
        let state = self.data.entry(addr).or_default();
        if state.reads.len() <= tid {
            state.reads.resize_with(tid + 1, || None);
        }
        state.reads[tid] = Some((self.clocks[tid].get(tid), loc));
    }

    /// A non-atomic write of data location `addr`. Flags a race against an
    /// unordered earlier write or read.
    pub fn data_write(&mut self, tid: usize, addr: usize, what: &'static str, loc: Loc) {
        let clock = self.clocks[tid].clone();
        let state = self.data.entry(addr).or_default();
        let mut raced: Option<(AccessSite, AccessSite)> = None;
        if let Some((wt, wstamp, wloc)) = state.last_write {
            if wt != tid && !clock.covers(wt, wstamp) {
                raced = Some((
                    AccessSite { tid: wt, thread: String::new(), access: "write", loc: wloc },
                    AccessSite { tid, thread: String::new(), access: "write", loc },
                ));
            }
        }
        if raced.is_none() {
            for (rt, read) in state.reads.iter().enumerate() {
                if let Some((rstamp, rloc)) = read {
                    if rt != tid && !clock.covers(rt, *rstamp) {
                        raced = Some((
                            AccessSite {
                                tid: rt,
                                thread: String::new(),
                                access: "read",
                                loc: rloc,
                            },
                            AccessSite { tid, thread: String::new(), access: "write", loc },
                        ));
                        break;
                    }
                }
            }
        }
        let stamp = self.clocks[tid].get(tid);
        let state = self.data.entry(addr).or_default();
        state.last_write = Some((tid, stamp, loc));
        state.reads.clear();
        if let Some((mut first, mut second)) = raced {
            first.thread = self.names[first.tid].clone();
            second.thread = self.names[second.tid].clone();
            self.races.push(RaceReport { what, first, second });
        }
    }

    /// Races recorded so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Drains the recorded races.
    pub fn take_races(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.races)
    }
}

// ---------------------------------------------------------------------------
// The process-global live detector (instrumenting real test suites).
// ---------------------------------------------------------------------------

/// Live-mode gate: 0 = uninitialised (read `GS_RACE` on first use),
/// 1 = on, 2 = off.
static DETECTING: AtomicU8 = AtomicU8::new(0);

static GLOBAL: Mutex<Option<Detector>> = Mutex::new(None);

thread_local! {
    /// This OS thread's id in the global detector.
    static LIVE_TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Whether the live detector is recording (one relaxed load steady-state).
#[inline]
pub fn detecting() -> bool {
    match DETECTING.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = matches!(std::env::var("GS_RACE").as_deref(), Ok("1") | Ok("on") | Ok("true"));
            DETECTING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns the live detector on or off (overrides `GS_RACE`).
pub fn set_detecting(on: bool) {
    DETECTING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Runs `f` on the global detector with this OS thread registered. Spawn
/// edges between real threads are unknown to the live detector, so a fresh
/// thread starts with an empty clock — sound for lock/atomic-synchronized
/// protocols (the edges the production code actually relies on), and every
/// production access we annotate sits behind one of those.
#[cfg_attr(not(feature = "model"), allow(dead_code))] // callers live in the instrumented paths
pub(crate) fn with_global<R>(f: impl FnOnce(&mut Detector, usize) -> R) -> R {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let detector = guard.get_or_insert_with(Detector::new);
    let tid = LIVE_TID.with(|cell| match cell.get() {
        Some(tid) => tid,
        None => {
            let name = std::thread::current().name().unwrap_or("?").to_string();
            let tid = detector.register_thread(&name, None);
            cell.set(Some(tid));
            tid
        }
    });
    f(detector, tid)
}

/// Drains races recorded by the live detector (empty when it never ran).
pub fn take_live_races() -> Vec<RaceReport> {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_mut().map(Detector::take_races).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_edges_order_accesses() {
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        d.lock_acquired(a, 1);
        d.data_write(a, 100, "x", Location::caller());
        d.lock_released(a, 1);
        d.lock_acquired(b, 1);
        d.data_read(b, 100, "x", Location::caller());
        assert!(d.races().is_empty(), "{:?}", d.races());
    }

    #[test]
    fn unordered_write_read_races() {
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        d.data_write(a, 100, "x", Location::caller());
        d.data_read(b, 100, "x", Location::caller());
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].what, "x");
        assert_eq!(d.races()[0].first.access, "write");
    }

    #[test]
    fn release_acquire_publishes_relaxed_does_not() {
        // Release store → Acquire load orders the data access.
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        d.data_write(a, 100, "payload", Location::caller());
        d.atomic_store(a, 7, Ordering::Release);
        d.atomic_load(b, 7, Ordering::Acquire);
        d.data_read(b, 100, "payload", Location::caller());
        assert!(d.races().is_empty());

        // Same shape with a Relaxed store: the edge is gone.
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        d.data_write(a, 100, "payload", Location::caller());
        d.atomic_store(a, 7, Ordering::Relaxed);
        d.atomic_load(b, 7, Ordering::Acquire);
        d.data_read(b, 100, "payload", Location::caller());
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn relaxed_rmw_continues_release_sequence() {
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        let c = d.register_thread("c", None);
        d.data_write(a, 100, "payload", Location::caller());
        d.atomic_store(a, 7, Ordering::Release);
        // A Relaxed counter bump by a third thread must not sever the edge.
        d.atomic_rmw(c, 7, Ordering::Relaxed);
        d.atomic_load(b, 7, Ordering::Acquire);
        d.data_read(b, 100, "payload", Location::caller());
        assert!(d.races().is_empty(), "{:?}", d.races());
    }

    #[test]
    fn spawn_and_join_edges() {
        let mut d = Detector::new();
        let parent = d.register_thread("parent", None);
        d.data_write(parent, 100, "x", Location::caller());
        let child = d.register_thread("child", Some(parent));
        d.data_read(child, 100, "x", Location::caller());
        d.data_write(child, 100, "x", Location::caller());
        d.join_edge(parent, child);
        d.data_read(parent, 100, "x", Location::caller());
        assert!(d.races().is_empty(), "{:?}", d.races());
    }

    #[test]
    fn write_write_conflict_races() {
        let mut d = Detector::new();
        let a = d.register_thread("a", None);
        let b = d.register_thread("b", None);
        d.data_write(a, 100, "x", Location::caller());
        d.data_write(b, 100, "x", Location::caller());
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].second.access, "write");
    }
}
