//! Public API for writing and exploring concurrency models.
//!
//! A *model* is a small, self-contained function that reconstructs the core
//! of a real concurrent protocol using [`crate::sync`] primitives,
//! [`spawn`]/[`ModelHandle::join`] for threads, and [`RawCell`] for the
//! plain data the protocol is supposed to protect. [`explore`] runs the
//! model under every schedule the budget allows and returns the first
//! failure — an assertion panic, a deadlock, a happens-before race on a
//! `RawCell`/`Probe`, or a step-budget blowout — together with the exact
//! schedule trace that produced it.
//!
//! Exploration is depth-first with an iterative-deepening preemption bound
//! (schedules with 0 forced preemptions first, then 1, then 2, …), so the
//! first failure found is minimal in preemptions — the trace reads like the
//! simplest possible interleaving that breaks the invariant. A
//! bounded-random mode covers models whose schedule space is too large to
//! exhaust.
//!
//! # Value semantics
//!
//! Atomics perform real `std` operations, one thread at a time, so every
//! explored execution is sequentially consistent at the *value* level.
//! Weak-memory effects are modeled at the *happens-before* level instead:
//! a `Relaxed` store does not publish the writer's clock, so data it was
//! supposed to guard is flagged as a race even though the explored values
//! look fine. This catches "Relaxed where Release is required" bugs without
//! simulating stale reads; genuinely value-dependent weak-memory behavior
//! (e.g. IRIW) is out of scope.

use std::sync::Arc;

use crate::sched::{self, ChoiceRec, Policy};

pub use crate::sched::{Event, FailureKind};

/// Budgets and strategy for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Maximum schedules to run before giving up (default 4096).
    pub max_schedules: usize,
    /// Preemption bound for DFS; deepened iteratively from 0 (default 2).
    pub max_preemptions: usize,
    /// Per-schedule step budget; exceeding it is a livelock failure
    /// (default 20 000).
    pub max_steps: usize,
    /// When set, explore `max_schedules` random schedules from this seed
    /// instead of DFS.
    pub random_seed: Option<u64>,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 4096,
            max_preemptions: 2,
            max_steps: 20_000,
            random_seed: None,
        }
    }
}

/// A schedule failure: what went wrong plus the trace that got there.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failure class and payload.
    pub kind: FailureKind,
    /// Every scheduling step up to the failure, in order.
    pub trace: Vec<Event>,
    /// Which schedule (0-based) failed.
    pub schedule: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => writeln!(f, "model panicked: {msg}")?,
            FailureKind::Deadlock(blocked) => {
                writeln!(f, "deadlock: no thread is schedulable")?;
                for line in blocked {
                    writeln!(f, "  {line}")?;
                }
            }
            FailureKind::Race(report) => writeln!(f, "{report}")?,
            FailureKind::StepBudget(n) => {
                writeln!(f, "step budget exhausted after {n} steps (livelock?)")?
            }
        }
        writeln!(f, "schedule #{} ({} steps):", self.schedule, self.trace.len())?;
        const TAIL: usize = 200;
        if self.trace.len() > TAIL {
            writeln!(f, "  … {} earlier steps elided …", self.trace.len() - TAIL)?;
        }
        for ev in self.trace.iter().rev().take(TAIL).rev() {
            writeln!(f, "  {ev}")?;
        }
        Ok(())
    }
}

/// What [`explore`] found.
#[derive(Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// Total scheduling steps across all schedules (for throughput stats).
    pub steps: usize,
    /// The first failure, if any schedule failed.
    pub failure: Option<Failure>,
    /// True when DFS exhausted every schedule within the preemption bound
    /// and budget — i.e. the absence of a failure is a proof up to that
    /// bound, not a sampling result.
    pub exhaustive: bool,
}

impl Report {
    /// Panics with the full failure rendering if any schedule failed.
    /// The standard assertion at the end of a model test.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!("model check failed:\n{failure}");
        }
    }

    /// Panics unless a failure was found — used by the mutation self-test
    /// to prove a seeded bug is caught.
    #[track_caller]
    pub fn assert_fails(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!("expected the model to fail, but {} schedules passed", self.schedules)
        })
    }
}

/// Explores `body` under many schedules. `body` is re-run from scratch for
/// every schedule, as model thread `T0 [main]`; it must be deterministic
/// apart from scheduling (no wall clock, no OS randomness).
pub fn explore<F>(opts: ExploreOpts, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut schedules = 0usize;
    let mut steps = 0usize;

    if let Some(seed) = opts.random_seed {
        let mut state = seed.max(1);
        while schedules < opts.max_schedules {
            // Split the stream per schedule so each run is independently
            // seeded but the whole exploration replays from `seed`.
            state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let outcome =
                sched::run_one(Policy::Random { state }, opts.max_steps, Arc::clone(&body));
            schedules += 1;
            steps += outcome.steps;
            if let Some((kind, trace)) = outcome.failure {
                return Report {
                    schedules,
                    steps,
                    failure: Some(Failure { kind, trace, schedule: schedules - 1 }),
                    exhaustive: false,
                };
            }
        }
        return Report { schedules, steps, failure: None, exhaustive: false };
    }

    for bound in 0..=opts.max_preemptions {
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if schedules >= opts.max_schedules {
                return Report { schedules, steps, failure: None, exhaustive: false };
            }
            let outcome = sched::run_one(
                Policy::Dfs { prefix: prefix.clone(), bound },
                opts.max_steps,
                Arc::clone(&body),
            );
            schedules += 1;
            steps += outcome.steps;
            if let Some((kind, trace)) = outcome.failure {
                return Report {
                    schedules,
                    steps,
                    failure: Some(Failure { kind, trace, schedule: schedules - 1 }),
                    exhaustive: false,
                };
            }
            match next_prefix(&outcome.choices) {
                Some(next) => prefix = next,
                None => break,
            }
        }
    }
    Report { schedules, steps, failure: None, exhaustive: true }
}

/// The DFS successor: backtrack to the deepest choice point with an
/// untried alternative and advance it.
fn next_prefix(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    for i in (0..choices.len()).rev() {
        let rec = &choices[i];
        let pos = rec.options.iter().position(|&t| t == rec.chosen)?;
        if pos + 1 < rec.options.len() {
            let mut prefix: Vec<usize> = choices[..i].iter().map(|r| r.chosen).collect();
            prefix.push(rec.options[pos + 1]);
            return Some(prefix);
        }
    }
    None
}

/// Spawns a named model thread. Must be called from inside a model
/// execution (i.e. from the `explore` body or one of its spawned threads).
#[track_caller]
pub fn spawn<F>(name: &str, f: F) -> ModelHandle
where
    F: FnOnce() + Send + 'static,
{
    let ctx = sched::current().expect("gs_race::model::spawn outside a model execution");
    let loc = std::panic::Location::caller();
    let tid = sched::model_spawn(&ctx, name, Box::new(f), loc);
    ModelHandle { tid }
}

/// Handle to a spawned model thread; joining creates a happens-before edge.
pub struct ModelHandle {
    tid: usize,
}

impl ModelHandle {
    /// Blocks (in model time) until the thread finishes.
    #[track_caller]
    pub fn join(self) {
        let ctx = sched::current().expect("gs_race::model::ModelHandle::join outside a model");
        sched::model_join(&ctx, self.tid, std::panic::Location::caller());
    }
}

/// Plain, intentionally-unsynchronized shared data for models: the thing a
/// protocol under test is supposed to protect. Every access is a scheduling
/// point and feeds the happens-before detector, so an interleaving in which
/// two conflicting accesses are unordered fails with a race report. The
/// scheduler serializes accesses at the value level, which is what makes
/// the `Sync` impl sound; using a `RawCell` outside a model execution
/// panics rather than touching the cell unsynchronized.
pub struct RawCell<T> {
    cell: std::cell::UnsafeCell<T>,
    what: &'static str,
}

// SAFETY: all accesses go through read()/write(), which require a model
// context; the model scheduler runs exactly one thread between yield
// points, so accesses are serialized.
unsafe impl<T: Send> Sync for RawCell<T> {}

impl<T: Copy> RawCell<T> {
    /// A new cell labeled `what` (the label appears in race reports).
    pub fn new(what: &'static str, value: T) -> Self {
        RawCell { cell: std::cell::UnsafeCell::new(value), what }
    }

    fn ctx(&self) -> sched::Ctx {
        sched::current()
            .unwrap_or_else(|| panic!("RawCell `{}` accessed outside a model execution", self.what))
    }

    /// Reads the value; a detector-visible plain read.
    #[track_caller]
    pub fn read(&self) -> T {
        let ctx = self.ctx();
        let loc = std::panic::Location::caller();
        let addr = self.cell.get() as usize;
        // SAFETY: serialized by the model scheduler (see Sync impl).
        sched::model_data(&ctx, addr, self.what, false, loc, || unsafe { *self.cell.get() })
    }

    /// Writes the value; a detector-visible plain write.
    #[track_caller]
    pub fn write(&self, value: T) {
        let ctx = self.ctx();
        let loc = std::panic::Location::caller();
        let addr = self.cell.get() as usize;
        // SAFETY: serialized by the model scheduler (see Sync impl).
        sched::model_data(&ctx, addr, self.what, true, loc, || unsafe {
            *self.cell.get() = value;
        })
    }
}
