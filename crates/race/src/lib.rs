//! gs-race: schedule-exploring model checker and happens-before race
//! detector for goalspotter's hand-rolled concurrency.
//!
//! The workspace's concurrent subsystems — the `gs-par` pool, the store's
//! `EpochCell` epoch/swap readers, the serve batcher, the tensor arena —
//! are dependency-free by design, which also means no off-the-shelf
//! checker ever sees them. This crate closes that gap with three layers:
//!
//! 1. **[`sync`]** — drop-in `AtomicUsize`/`AtomicU64`/`AtomicU8`/
//!    `AtomicBool`, `Mutex`, `Condvar`, and the [`sync::Probe`] publication
//!    annotation. Without the `model` feature they compile to plain std
//!    (zero-cost, pinned by an overhead test). With it, a runtime gate
//!    routes every op through a recorder.
//! 2. **[`model`]** (feature `model`) — a deterministic scheduler that
//!    explores interleavings of small *models*: self-contained cores of the
//!    real protocols rebuilt on [`sync`] primitives. Exhaustive DFS with an
//!    iterative-deepening preemption bound, or bounded-random; failures
//!    (assertion, deadlock, race, livelock) come with the exact schedule
//!    trace, minimal in preemptions.
//! 3. **[`detect`]** — the vector-clock happens-before engine both modes
//!    share. As the *live* detector (`GS_RACE=1`) it instruments the real
//!    pool/store/serve test suites and reports unsynchronized conflicting
//!    accesses with both source locations.
//!
//! Ordering semantics are faithful where it matters for finding bugs:
//! `Release`→`Acquire` edges transfer clocks, a `Relaxed` store severs a
//! location's release edge (so "`Relaxed` where `Release` is required"
//! publication bugs show up as races), a `Relaxed` RMW continues a release
//! sequence, `SeqCst` is treated as acquire+release. Values are explored
//! sequentially consistently; see [`model`] for the precise scope.

#![warn(missing_docs)]

pub mod clock;
pub mod detect;
pub mod sync;

#[cfg(feature = "model")]
pub(crate) mod sched;

#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub mod models;

pub use detect::{detecting, set_detecting, take_live_races, RaceReport};
