//! Vector clocks: the partial order underneath both the happens-before race
//! detector and the model checker's trace reports.
//!
//! A [`VClock`] maps thread id → logical timestamp. Thread `t`'s own clock
//! advances ([`VClock::tick`]) at every synchronization release it performs;
//! synchronization edges (mutex release→acquire, atomic Release
//! store→Acquire load, spawn, join) transfer clocks by component-wise
//! maximum ([`VClock::join`]). Access `a` happens-before access `b` exactly
//! when the clock `b`'s thread held at `b` covers the stamp `a`'s thread had
//! at `a` — the [`VClock::covers`] test the detector runs on every
//! conflicting pair.

/// A vector clock: component `t` is the latest timestamp of thread `t` this
/// clock has synchronized with. Missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (knows about no thread).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    fn grow(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    /// Timestamp of thread `tid` in this clock (0 when unknown).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances thread `tid`'s own component by one.
    pub fn tick(&mut self, tid: usize) {
        self.grow(tid);
        self.0[tid] += 1;
    }

    /// Component-wise maximum: after `self.join(other)` this clock has
    /// synchronized with everything `other` had.
    pub fn join(&mut self, other: &VClock) {
        self.grow(other.0.len().saturating_sub(1));
        for (i, &stamp) in other.0.iter().enumerate() {
            if self.0[i] < stamp {
                self.0[i] = stamp;
            }
        }
    }

    /// Whether this clock covers `(tid, stamp)` — i.e. an event stamped
    /// `stamp` by thread `tid` happens-before any event performed under this
    /// clock.
    pub fn covers(&self, tid: usize, stamp: u32) -> bool {
        self.get(tid) >= stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_covers() {
        let mut a = VClock::new();
        a.tick(0); // a = [1]
        a.tick(0); // a = [2]
        let mut b = VClock::new();
        b.tick(3); // b = [0,0,0,1]
        assert!(!b.covers(0, 1), "b never synchronized with thread 0");
        b.join(&a);
        assert!(b.covers(0, 2));
        assert!(b.covers(0, 1));
        assert!(!b.covers(0, 3));
        assert_eq!(b.get(3), 1);
        assert_eq!(a.get(3), 0, "join is one-directional");
        // Zero stamps are covered by any clock (nothing happened yet).
        assert!(VClock::new().covers(7, 0));
    }
}
