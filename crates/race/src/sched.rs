//! The deterministic model-execution scheduler.
//!
//! A model execution runs its "threads" as real OS threads, but only one is
//! ever unparked: every instrumented operation first *yields* — the thread
//! parks and hands control to the controller (the thread that called
//! [`explore`](crate::model::explore)), which picks the next thread to grant
//! one step, per the exploration policy. Because exactly one thread runs
//! between yield points, executions are fully determined by the sequence of
//! scheduling choices, which is what makes schedules replayable and
//! exhaustively explorable.
//!
//! Blocking primitives are *modeled*, not delegated to the OS:
//!
//! - a model mutex tracks its owner here; a thread that finds it held parks
//!   as `BlockedMutex` and becomes schedulable again when the owner
//!   releases (the underlying `std::sync::Mutex` is then taken
//!   uncontended, purely to hold the data);
//! - a condvar wait releases the model mutex and parks as `WaitingCv`; a
//!   notify marks waiters woken in FIFO order but they only run once
//!   scheduled *and* the mutex is free;
//! - a **timed** wait is additionally schedulable before any notify — the
//!   scheduler may fire its timeout at any legal point, which is how
//!   linger/deadline protocols get both their "woken by arrival" and
//!   "timed out" branches explored;
//! - join parks as `BlockedJoin` until the target finishes.
//!
//! If no thread is schedulable and some are unfinished, the execution
//! deadlocked: the controller reports every blocked thread's state and
//! site. A panic in any model thread (assertion failure) is caught at that
//! thread's root and reported with the schedule trace. In either case the
//! execution is abandoned: still-parked threads are leaked deliberately
//! (they hold no OS resources beyond a parked thread, and exploration
//! stops at the first failure).

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::detect::{Detector, Loc, RaceReport};

/// One recorded step of a model execution.
#[derive(Clone, Debug)]
pub struct Event {
    /// Position in the schedule (0-based).
    pub step: usize,
    /// Model thread id.
    pub tid: usize,
    /// Model thread name.
    pub thread: String,
    /// What the step did (e.g. `atomic_store(Release)`).
    pub desc: String,
    /// Source location of the operation.
    pub loc: Loc,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>4}. [T{} {}] {} at {}:{}",
            self.step,
            self.tid,
            self.thread,
            self.desc,
            self.loc.file(),
            self.loc.line()
        )
    }
}

/// Why an execution failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion violation), with the payload.
    Panic(String),
    /// No thread was schedulable; one line per unfinished thread.
    Deadlock(Vec<String>),
    /// The happens-before detector found a race during this schedule.
    Race(RaceReport),
    /// The execution exceeded the per-schedule step budget (livelock guard).
    StepBudget(usize),
}

/// Scheduling state of one model thread.
#[derive(Clone, Debug)]
pub(crate) enum Status {
    /// Parked at a yield point, waiting for a grant.
    Ready,
    /// Currently granted (at most one thread).
    Running,
    /// Parked on a model mutex; schedulable when the owner releases.
    BlockedMutex(usize),
    /// Parked in a condvar wait.
    WaitingCv {
        /// Condvar address.
        cv: usize,
        /// Mutex to re-acquire on wake.
        mutex: usize,
        /// Whether this is a timed wait (schedulable as a timeout).
        timed: bool,
        /// Set by notify; the thread still re-acquires the mutex.
        woken: bool,
        /// FIFO order among waiters.
        seq: u64,
    },
    /// Parked joining another model thread.
    BlockedJoin(usize),
    /// The thread's closure returned (or panicked).
    Finished,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum WakeReason {
    Notified,
    TimedOut,
}

pub(crate) struct MThread {
    pub name: String,
    pub status: Status,
    /// The next event to record when this thread is granted.
    pub pending: Option<(String, Loc)>,
    pub wake: WakeReason,
}

pub(crate) struct ExecInner {
    pub threads: Vec<MThread>,
    pub detector: Detector,
    pub mutex_owner: HashMap<usize, usize>,
    pub trace: Vec<Event>,
    pub step: usize,
    pub active: Option<usize>,
    pub failure: Option<FailureKind>,
    pub wait_seq: u64,
}

/// Shared state of one model execution.
pub(crate) struct Execution {
    pub inner: Mutex<ExecInner>,
    pub cv: Condvar,
    pub handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// Set while this OS thread runs as a model thread.
    static MODEL_CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// This OS thread's identity inside a model execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

/// The current model context, if this thread is a model thread.
pub(crate) fn current() -> Option<Ctx> {
    MODEL_CTX.with(|c| c.borrow().clone())
}

/// Whether the current OS thread is a model thread (no Arc clone).
#[inline]
pub(crate) fn in_model() -> bool {
    MODEL_CTX.with(|c| c.borrow().is_some())
}

fn lock_inner(exec: &Execution) -> std::sync::MutexGuard<'_, ExecInner> {
    exec.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl Execution {
    pub fn new() -> Arc<Execution> {
        Arc::new(Execution {
            inner: Mutex::new(ExecInner {
                threads: Vec::new(),
                detector: Detector::new(),
                mutex_owner: HashMap::new(),
                trace: Vec::new(),
                step: 0,
                active: None,
                failure: None,
                wait_seq: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Runs `f` on the execution state. Callers hold the grant, so this is
    /// bookkeeping, not a scheduling point.
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut ExecInner) -> R) -> R {
        let mut g = lock_inner(self);
        f(&mut g)
    }

    /// Parks until the controller grants this thread.
    fn wait_granted(&self, tid: usize) {
        let mut g = lock_inner(self);
        while g.active != Some(tid) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Hands the grant back (after `prepare` updates this thread's state)
    /// and parks until re-granted.
    fn park(&self, tid: usize, prepare: impl FnOnce(&mut ExecInner)) {
        let mut g = lock_inner(self);
        prepare(&mut g);
        g.active = None;
        self.cv.notify_all();
        while g.active != Some(tid) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The standard yield point: record `desc` as this thread's next event,
    /// hand back the grant, park until granted again.
    pub fn reschedule(&self, tid: usize, desc: String, loc: Loc) {
        self.park(tid, |g| {
            g.threads[tid].pending = Some((desc, loc));
            g.threads[tid].status = Status::Ready;
        });
    }

    /// Registers a new model thread (detector clock seeded from `parent`)
    /// and returns its tid. Caller must hold the grant.
    pub fn register_thread(
        &self,
        name: &str,
        parent: Option<usize>,
        first_op: &str,
        loc: Loc,
    ) -> usize {
        let mut g = lock_inner(self);
        let tid = g.detector.register_thread(name, parent);
        debug_assert_eq!(tid, g.threads.len());
        g.threads.push(MThread {
            name: name.to_string(),
            status: Status::Ready,
            pending: Some((first_op.to_string(), loc)),
            wake: WakeReason::Notified,
        });
        tid
    }
}

/// The body run by each model thread's OS thread.
pub(crate) fn thread_main(exec: Arc<Execution>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    MODEL_CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
    exec.wait_granted(tid);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    {
        let mut g = lock_inner(&exec);
        g.threads[tid].status = Status::Finished;
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".to_string());
            if g.failure.is_none() {
                g.failure = Some(FailureKind::Panic(msg));
            }
        }
        g.active = None;
        exec.cv.notify_all();
    }
    MODEL_CTX.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Thread-side operation protocol (called from the sync wrappers).
// ---------------------------------------------------------------------------

/// An instrumented atomic op: yield, perform, record.
pub(crate) fn model_atomic<T>(
    ctx: &Ctx,
    addr: usize,
    kind: &str,
    ordering: std::sync::atomic::Ordering,
    loc: Loc,
    op: impl FnOnce() -> T,
) -> T {
    ctx.exec.reschedule(ctx.tid, format!("atomic_{kind}({ordering:?})"), loc);
    let value = op();
    ctx.exec.with_inner(|g| match kind {
        "load" => g.detector.atomic_load(ctx.tid, addr, ordering),
        "store" => g.detector.atomic_store(ctx.tid, addr, ordering),
        _ => g.detector.atomic_rmw(ctx.tid, addr, ordering),
    });
    value
}

/// An instrumented non-atomic data access (RawCell / Probe): yield,
/// perform, run the happens-before check.
pub(crate) fn model_data<T>(
    ctx: &Ctx,
    addr: usize,
    what: &'static str,
    write: bool,
    loc: Loc,
    op: impl FnOnce() -> T,
) -> T {
    let kind = if write { "write" } else { "read" };
    ctx.exec.reschedule(ctx.tid, format!("{kind} `{what}`"), loc);
    let value = op();
    ctx.exec.with_inner(|g| {
        if write {
            g.detector.data_write(ctx.tid, addr, what, loc);
        } else {
            g.detector.data_read(ctx.tid, addr, what, loc);
        }
    });
    value
}

/// Model-mutex lock: parks while held; the std mutex is taken by the caller
/// afterwards, uncontended by construction.
pub(crate) fn model_mutex_lock(ctx: &Ctx, addr: usize, loc: Loc) {
    ctx.exec.reschedule(ctx.tid, "mutex_lock".to_string(), loc);
    loop {
        let acquired = ctx.exec.with_inner(|g| {
            if let std::collections::hash_map::Entry::Vacant(slot) = g.mutex_owner.entry(addr) {
                slot.insert(ctx.tid);
                g.detector.lock_acquired(ctx.tid, addr);
                true
            } else {
                false
            }
        });
        if acquired {
            return;
        }
        ctx.exec.park(ctx.tid, |g| {
            g.threads[ctx.tid].pending = Some(("mutex_acquired".to_string(), loc));
            g.threads[ctx.tid].status = Status::BlockedMutex(addr);
        });
    }
}

/// Model-mutex unlock: yields, then `drop_guard` releases the std mutex
/// *before* the model ownership clears, so a granted waiter can never block
/// on the real lock.
pub(crate) fn model_mutex_unlock(ctx: &Ctx, addr: usize, loc: Loc, drop_guard: impl FnOnce()) {
    ctx.exec.reschedule(ctx.tid, "mutex_unlock".to_string(), loc);
    drop_guard();
    ctx.exec.with_inner(|g| {
        g.mutex_owner.remove(&addr);
        g.detector.lock_released(ctx.tid, addr);
    });
}

/// Model condvar wait: releases the mutex, parks as a waiter, returns
/// whether the wake was a timeout. The caller re-locks the std mutex.
pub(crate) fn model_condvar_wait(
    ctx: &Ctx,
    cv_addr: usize,
    mutex_addr: usize,
    timed: bool,
    loc: Loc,
    drop_guard: impl FnOnce(),
) -> bool {
    let desc = if timed { "condvar_wait_timeout" } else { "condvar_wait" };
    ctx.exec.reschedule(ctx.tid, desc.to_string(), loc);
    drop_guard();
    ctx.exec.park(ctx.tid, |g| {
        g.mutex_owner.remove(&mutex_addr);
        g.detector.lock_released(ctx.tid, mutex_addr);
        let seq = g.wait_seq;
        g.wait_seq += 1;
        g.threads[ctx.tid].pending = Some(("condvar_wake".to_string(), loc));
        g.threads[ctx.tid].status =
            Status::WaitingCv { cv: cv_addr, mutex: mutex_addr, timed, woken: false, seq };
    });
    // Granted again: the controller guarantees the mutex is free.
    ctx.exec.with_inner(|g| {
        g.mutex_owner.insert(mutex_addr, ctx.tid);
        g.detector.lock_acquired(ctx.tid, mutex_addr);
        matches!(g.threads[ctx.tid].wake, WakeReason::TimedOut)
    })
}

/// Model condvar notify: marks waiters woken in FIFO order. A notify with
/// no waiters is lost, exactly like the real primitive.
pub(crate) fn model_condvar_notify(ctx: &Ctx, cv_addr: usize, all: bool, loc: Loc) {
    let desc = if all { "condvar_notify_all" } else { "condvar_notify_one" };
    ctx.exec.reschedule(ctx.tid, desc.to_string(), loc);
    ctx.exec.with_inner(|g| loop {
        let mut candidate: Option<(usize, u64)> = None;
        for (t, thread) in g.threads.iter().enumerate() {
            if let Status::WaitingCv { cv, woken: false, seq, .. } = thread.status {
                if cv == cv_addr && candidate.map(|(_, s)| seq < s).unwrap_or(true) {
                    candidate = Some((t, seq));
                }
            }
        }
        let Some((t, _)) = candidate else { break };
        if let Status::WaitingCv { woken, .. } = &mut g.threads[t].status {
            *woken = true;
        }
        if !all {
            break;
        }
    });
}

/// Model join: parks until `child` finishes, then inherits its clock.
pub(crate) fn model_join(ctx: &Ctx, child: usize, loc: Loc) {
    ctx.exec.reschedule(ctx.tid, format!("join T{child}"), loc);
    loop {
        let done = ctx.exec.with_inner(|g| {
            if matches!(g.threads[child].status, Status::Finished) {
                g.detector.join_edge(ctx.tid, child);
                true
            } else {
                false
            }
        });
        if done {
            return;
        }
        ctx.exec.park(ctx.tid, |g| {
            g.threads[ctx.tid].pending = Some((format!("join T{child} resumed"), loc));
            g.threads[ctx.tid].status = Status::BlockedJoin(child);
        });
    }
}

/// Model spawn: registers the child (spawn edge in the detector) and starts
/// its OS thread, which parks until first granted.
pub(crate) fn model_spawn(ctx: &Ctx, name: &str, f: Box<dyn FnOnce() + Send>, loc: Loc) -> usize {
    ctx.exec.reschedule(ctx.tid, format!("spawn [{name}]"), loc);
    let tid = ctx.exec.register_thread(name, Some(ctx.tid), "thread_start", loc);
    let exec2 = Arc::clone(&ctx.exec);
    let handle = std::thread::Builder::new()
        .name(format!("gs-race-model-{name}"))
        .spawn(move || thread_main(exec2, tid, f))
        .expect("spawn model thread");
    ctx.exec.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    tid
}

// ---------------------------------------------------------------------------
// Controller: runs one execution under a scheduling policy.
// ---------------------------------------------------------------------------

/// One scheduling decision: which threads were schedulable (after any
/// preemption-bound restriction) and which was chosen.
#[derive(Clone, Debug)]
pub(crate) struct ChoiceRec {
    pub options: Vec<usize>,
    pub chosen: usize,
}

/// How the controller picks among schedulable threads.
pub(crate) enum Policy {
    /// Depth-first: replay `prefix`, then default to running the current
    /// thread as long as possible, switching only when forced or when the
    /// preemption budget allows an alternative to exist.
    Dfs { prefix: Vec<usize>, bound: usize },
    /// Uniform random choice from a seeded xorshift stream.
    Random { state: u64 },
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    *state
}

fn runnable_threads(g: &ExecInner) -> Vec<usize> {
    let mut out = Vec::new();
    for (t, thread) in g.threads.iter().enumerate() {
        let ready = match &thread.status {
            Status::Ready => true,
            Status::Running | Status::Finished => false,
            Status::BlockedMutex(m) => !g.mutex_owner.contains_key(m),
            Status::WaitingCv { mutex, timed, woken, .. } => {
                (*woken || *timed) && !g.mutex_owner.contains_key(mutex)
            }
            Status::BlockedJoin(c) => matches!(g.threads[*c].status, Status::Finished),
        };
        if ready {
            out.push(t);
        }
    }
    out
}

fn blocked_summary(g: &ExecInner) -> Vec<String> {
    g.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.status, Status::Finished))
        .map(|(tid, t)| {
            let state = match &t.status {
                Status::BlockedMutex(_) => "blocked on mutex_lock".to_string(),
                Status::WaitingCv { timed, woken, .. } => {
                    format!("waiting on condvar (timed: {timed}, notified: {woken})")
                }
                Status::BlockedJoin(c) => format!("joining T{c}"),
                other => format!("{other:?}"),
            };
            let site = t
                .pending
                .as_ref()
                .map(|(_, loc)| format!("{}:{}", loc.file(), loc.line()))
                .unwrap_or_else(|| "?".to_string());
            format!("T{tid} [{}] {state} at {site}", t.name)
        })
        .collect()
}

/// Outcome of one controlled execution.
pub(crate) struct ExecOutcome {
    pub failure: Option<(FailureKind, Vec<Event>)>,
    pub choices: Vec<ChoiceRec>,
    pub steps: usize,
}

/// Runs `body` as model thread 0 under `policy`, stepping threads until all
/// finish, a failure fires, or the step budget runs out.
pub(crate) fn run_one(
    policy: Policy,
    max_steps: usize,
    body: Arc<dyn Fn() + Send + Sync>,
) -> ExecOutcome {
    let exec = Execution::new();
    let root_loc = std::panic::Location::caller();
    let tid0 = exec.register_thread("main", None, "thread_start", root_loc);
    {
        let exec2 = Arc::clone(&exec);
        let body = Arc::clone(&body);
        let handle = std::thread::Builder::new()
            .name("gs-race-model-main".to_string())
            .spawn(move || thread_main(exec2, tid0, Box::new(move || body())))
            .expect("spawn model main thread");
        exec.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    }

    let mut choices: Vec<ChoiceRec> = Vec::new();
    let mut policy = policy;
    let mut last: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut depth = 0usize;

    let failure = loop {
        let mut g = lock_inner(&exec);
        while g.active.is_some() {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        // A race recorded by the last step fails the execution.
        if g.failure.is_none() {
            if let Some(race) = g.detector.races().first() {
                g.failure = Some(FailureKind::Race(race.clone()));
            }
        }
        if let Some(kind) = g.failure.clone() {
            break Some((kind, g.trace.clone()));
        }
        if g.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
            break None;
        }
        if g.step >= max_steps {
            break Some((FailureKind::StepBudget(max_steps), g.trace.clone()));
        }
        let runnable = runnable_threads(&g);
        if runnable.is_empty() {
            break Some((FailureKind::Deadlock(blocked_summary(&g)), g.trace.clone()));
        }

        let chosen = match &mut policy {
            Policy::Dfs { prefix, bound } => {
                // Once the preemption budget is spent, the only alternative
                // is to keep running the current thread (when it can run) —
                // recorded as a singleton so DFS backtracking respects the
                // bound.
                let restricted: Vec<usize> = match last {
                    Some(l) if preemptions >= *bound && runnable.contains(&l) => vec![l],
                    _ => runnable.clone(),
                };
                // The recorded order IS the exploration order, and
                // `next_prefix` advances strictly rightwards through it —
                // so the first-visit default must sit at index 0. Rotate
                // the non-preemptive choice (continue the current thread)
                // to the front; the rest stay in ascending-tid order.
                let mut options = restricted;
                if let Some(l) = last {
                    if let Some(p) = options.iter().position(|&t| t == l) {
                        options.remove(p);
                        options.insert(0, l);
                    }
                }
                let chosen = if depth < prefix.len() {
                    let t = prefix[depth];
                    assert!(
                        options.contains(&t),
                        "schedule replay diverged: T{t} not schedulable at step {depth} \
                         (model code must be deterministic — no wall-clock or OS randomness)"
                    );
                    t
                } else {
                    options[0]
                };
                choices.push(ChoiceRec { options, chosen });
                chosen
            }
            Policy::Random { state } => {
                let i = (xorshift(state) % runnable.len() as u64) as usize;
                runnable[i]
            }
        };
        if let Some(l) = last {
            if chosen != l && runnable.contains(&l) {
                preemptions += 1;
            }
        }
        last = Some(chosen);
        depth += 1;

        // Grant: set the wake reason for condvar waiters, record the
        // thread's pending event, unpark it.
        let step = g.step;
        g.step += 1;
        if let Status::WaitingCv { woken, .. } = g.threads[chosen].status {
            g.threads[chosen].wake =
                if woken { WakeReason::Notified } else { WakeReason::TimedOut };
        }
        if let Some((desc, loc)) = g.threads[chosen].pending.take() {
            let thread = g.threads[chosen].name.clone();
            let mut desc = desc;
            if let Status::WaitingCv { woken, .. } = g.threads[chosen].status {
                desc = if woken {
                    format!("{desc} (notified)")
                } else {
                    format!("{desc} (timed out)")
                };
            }
            g.trace.push(Event { step, tid: chosen, thread, desc, loc });
        }
        g.threads[chosen].status = Status::Running;
        g.active = Some(chosen);
        exec.cv.notify_all();
        drop(g);
    };

    let steps = exec.with_inner(|g| g.step);
    if failure.is_none() {
        // Clean finish: every model thread exited; reap the OS threads.
        let handles: Vec<_> =
            std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
    // On failure the execution is abandoned: parked threads stay parked and
    // are leaked together with the execution state (exploration stops at
    // the first failure, so the leak is bounded by one execution).
    ExecOutcome { failure, choices, steps }
}
