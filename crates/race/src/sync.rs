//! Drop-in sync primitives: `std::sync` semantics, race-checker visibility.
//!
//! Production code (`gs-par`, `gs-store`, `gs-serve`, `gs_tensor::arena`)
//! uses these instead of the std types. Without the `model` feature every
//! type here is a `#[repr(transparent)]`/`#[inline(always)]` passthrough —
//! the compiled code is byte-for-byte what std would produce, pinned by the
//! `wrapper_overhead` test. With `cfg(feature = "model")` each operation
//! first checks a runtime gate:
//!
//! - on a **model thread** (inside [`crate::model::explore`]) the op is a
//!   scheduling point: the thread yields to the deterministic scheduler,
//!   performs the real op once granted, and records it with the
//!   execution's happens-before detector;
//! - when the **live detector** is on (`GS_RACE=1` or
//!   [`crate::detect::set_detecting`]) the op is performed normally and
//!   recorded with the process-global detector, so the *real* test suites
//!   run race-checked;
//! - otherwise the op goes straight to std (one relaxed load + one
//!   thread-local check of overhead).
//!
//! Two deviations from `std::sync`, both deliberate:
//!
//! - [`Mutex::lock`] and the [`Condvar`] waits recover from poisoning
//!   instead of returning `Result` — every call site in this workspace did
//!   `unwrap_or_else(|e| e.into_inner())` anyway, and a poisoned lock still
//!   guards memory-safe data;
//! - [`Condvar::wait_timeout`] returns this crate's [`WaitTimeoutResult`]
//!   (std's has no public constructor, and the model scheduler must be able
//!   to fabricate timeouts: a timed wait is schedulable as a spurious
//!   timeout at any legal point, which is how linger/deadline branches get
//!   explored).
//!
//! [`Probe`] annotates a non-atomic publication (e.g. the `Arc<ShardView>`
//! slot an epoch guards): pair `probe.write()` with the publish and
//! `probe.read()` with the consume, and the detector checks the two are
//! ordered by real synchronization.

use std::time::Duration;

pub use std::sync::atomic::Ordering;

#[cfg(feature = "model")]
use std::panic::Location;

#[cfg(feature = "model")]
use crate::{detect, sched};

// ---------------------------------------------------------------------------
// Instrumented-path dispatch (compiled only with the feature).
// ---------------------------------------------------------------------------

#[cfg(feature = "model")]
fn instrumented_atomic<T>(
    addr: usize,
    kind: &'static str,
    ordering: Ordering,
    loc: detect::Loc,
    op: impl FnOnce() -> T,
) -> T {
    if let Some(ctx) = sched::current() {
        return sched::model_atomic(&ctx, addr, kind, ordering, loc, op);
    }
    debug_assert!(detect::detecting());
    let record = |d: &mut detect::Detector, tid: usize| match kind {
        "load" => d.atomic_load(tid, addr, ordering),
        "store" => d.atomic_store(tid, addr, ordering),
        _ => d.atomic_rmw(tid, addr, ordering),
    };
    // Live mode races the recording against real concurrent ops. Record a
    // releasing store/RMW *before* performing it, so a concurrent acquire
    // load that observes the new value finds the release edge already
    // published. The error this admits is a spuriously-early edge (a missed
    // race), never a missed edge (a false accusation).
    if kind != "load" && detect::releases(ordering) {
        detect::with_global(record);
        op()
    } else {
        let value = op();
        detect::with_global(record);
        value
    }
}

/// Whether an op on this thread needs the instrumented path at all.
#[cfg(feature = "model")]
#[inline]
fn gated() -> bool {
    sched::in_model() || detect::detecting()
}

// ---------------------------------------------------------------------------
// Atomics.
// ---------------------------------------------------------------------------

macro_rules! atomic_common {
    ($name:ident, $std:ty, $prim:ty, $doc:expr) => {
        #[doc = $doc]
        #[doc = ""]
        #[doc = "Semantics match the std atomic; under `feature = \"model\"` every"]
        #[doc = "op is also a scheduling point / detector event (see module docs)."]
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates the atomic (usable in statics).
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            #[cfg(feature = "model")]
            #[inline(always)]
            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Atomic load.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn load(&self, ordering: Ordering) -> $prim {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "load",
                        ordering,
                        Location::caller(),
                        || self.inner.load(ordering),
                    );
                }
                self.inner.load(ordering)
            }

            /// Atomic store.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn store(&self, value: $prim, ordering: Ordering) {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "store",
                        ordering,
                        Location::caller(),
                        || self.inner.store(value, ordering),
                    );
                }
                self.inner.store(value, ordering)
            }

            /// Atomic swap (an RMW: continues a release sequence even when
            /// `Relaxed`).
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn swap(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "swap",
                        ordering,
                        Location::caller(),
                        || self.inner.swap(value, ordering),
                    );
                }
                self.inner.swap(value, ordering)
            }

            /// Consumes the atomic, returning the value (never instrumented:
            /// exclusive ownership is synchronization enough).
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! atomic_numeric {
    ($name:ident, $std:ty, $prim:ty, $doc:expr) => {
        atomic_common!($name, $std, $prim, $doc);

        impl $name {
            /// Atomic add, returning the previous value.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn fetch_add(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "fetch_add",
                        ordering,
                        Location::caller(),
                        || self.inner.fetch_add(value, ordering),
                    );
                }
                self.inner.fetch_add(value, ordering)
            }

            /// Atomic subtract, returning the previous value.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn fetch_sub(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "fetch_sub",
                        ordering,
                        Location::caller(),
                        || self.inner.fetch_sub(value, ordering),
                    );
                }
                self.inner.fetch_sub(value, ordering)
            }

            /// Atomic max, returning the previous value.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn fetch_max(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "fetch_max",
                        ordering,
                        Location::caller(),
                        || self.inner.fetch_max(value, ordering),
                    );
                }
                self.inner.fetch_max(value, ordering)
            }

            /// Atomic compare-exchange; records as an RMW at the stronger of
            /// the two orderings on success-path semantics.
            #[cfg_attr(feature = "model", track_caller)]
            #[inline(always)]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                #[cfg(feature = "model")]
                if gated() {
                    return instrumented_atomic(
                        self.addr(),
                        "compare_exchange",
                        success,
                        Location::caller(),
                        || self.inner.compare_exchange(current, new, success, failure),
                    );
                }
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_numeric!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    "Instrumentable `AtomicUsize`."
);
atomic_numeric!(AtomicU64, std::sync::atomic::AtomicU64, u64, "Instrumentable `AtomicU64`.");
atomic_numeric!(AtomicU8, std::sync::atomic::AtomicU8, u8, "Instrumentable `AtomicU8`.");
atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool, "Instrumentable `AtomicBool`.");

// ---------------------------------------------------------------------------
// Mutex.
// ---------------------------------------------------------------------------

/// How a live guard was taken (decides what its drop must record).
#[cfg(feature = "model")]
#[derive(Clone, Copy, PartialEq)]
enum GuardMode {
    /// Gate was off at lock time: plain std behavior.
    Plain,
    /// Taken on a model thread: unlock is a scheduling point.
    Model,
    /// Taken under the live detector: unlock publishes the clock.
    Live,
}

/// Instrumentable mutex. [`lock`](Mutex::lock) recovers from poisoning (see
/// module docs); under the model the lock order is decided by the explored
/// schedule, not the OS.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    #[cfg(feature = "model")]
    #[inline(always)]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn lock_std(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the mutex, recovering from poisoning.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        {
            let loc = Location::caller();
            if let Some(ctx) = sched::current() {
                sched::model_mutex_lock(&ctx, self.addr(), loc);
                // Granted with model ownership: the std lock is free.
                return MutexGuard {
                    std: Some(self.lock_std()),
                    mx: self,
                    mode: GuardMode::Model,
                    loc,
                };
            }
            if detect::detecting() {
                let std = self.lock_std();
                // Record after acquiring: the previous holder recorded its
                // release before unlocking, so the edge is already there.
                detect::with_global(|d, tid| d.lock_acquired(tid, self.addr()));
                return MutexGuard { std: Some(std), mx: self, mode: GuardMode::Live, loc };
            }
            MutexGuard { std: Some(self.lock_std()), mx: self, mode: GuardMode::Plain, loc }
        }
        #[cfg(not(feature = "model"))]
        MutexGuard(self.lock_std())
    }

    /// Exclusive access without locking (never instrumented: `&mut self` is
    /// synchronization enough).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`].
#[cfg(not(feature = "model"))]
pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

/// Guard returned by [`Mutex::lock`].
#[cfg(feature = "model")]
pub struct MutexGuard<'a, T> {
    /// `None` only transiently, while a condvar wait has given the lock up
    /// (the drop impl then does nothing).
    std: Option<std::sync::MutexGuard<'a, T>>,
    mx: &'a Mutex<T>,
    mode: GuardMode,
    loc: detect::Loc,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        #[cfg(feature = "model")]
        {
            self.std.as_deref().expect("guard released by condvar wait")
        }
        #[cfg(not(feature = "model"))]
        {
            &self.0
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "model")]
        {
            self.std.as_deref_mut().expect("guard released by condvar wait")
        }
        #[cfg(not(feature = "model"))]
        {
            &mut self.0
        }
    }
}

#[cfg(feature = "model")]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.is_none() {
            return;
        }
        match self.mode {
            GuardMode::Plain => {}
            GuardMode::Model => {
                if let Some(ctx) = sched::current() {
                    let addr = self.mx.addr();
                    let std = self.std.take();
                    sched::model_mutex_unlock(&ctx, addr, self.loc, move || drop(std));
                    return;
                }
            }
            GuardMode::Live => {
                // Publish the clock before the real unlock so the next
                // holder's post-acquire record always sees it.
                let addr = self.mx.addr();
                detect::with_global(|d, tid| d.lock_released(tid, addr));
            }
        }
        drop(self.std.take());
    }
}

// ---------------------------------------------------------------------------
// Condvar.
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]; this crate's own type so the model
/// scheduler can fabricate timeouts (std's has no public constructor).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed
    }
}

/// Instrumentable condition variable. Under the model, waits and wakeups
/// are modeled (FIFO notify, timeouts schedulable at any legal point), so
/// lost-wakeup bugs surface as deterministic deadlocks.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condvar (usable in statics).
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    #[cfg(feature = "model")]
    #[inline(always)]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Waits until notified, releasing and re-acquiring the guard's mutex.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(feature = "model")]
        {
            self.wait_inner(guard, None).0
        }
        #[cfg(not(feature = "model"))]
        {
            MutexGuard(self.inner.wait(guard.0).unwrap_or_else(|e| e.into_inner()))
        }
    }

    /// Waits until notified or `timeout` elapses. Under the model the
    /// duration is ignored: the timeout is a nondeterministic event the
    /// scheduler may fire at any point the mutex is free.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        #[cfg(feature = "model")]
        {
            let (guard, timed) = self.wait_inner(guard, Some(timeout));
            (guard, WaitTimeoutResult { timed })
        }
        #[cfg(not(feature = "model"))]
        {
            let (std, res) =
                self.inner.wait_timeout(guard.0, timeout).unwrap_or_else(|e| e.into_inner());
            (MutexGuard(std), WaitTimeoutResult { timed: res.timed_out() })
        }
    }

    #[cfg(feature = "model")]
    #[track_caller]
    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, bool) {
        let mx = guard.mx;
        let loc = guard.loc;
        let mode = guard.mode;
        match mode {
            GuardMode::Model => {
                let ctx = sched::current().expect("model guard waited outside a model thread");
                let mut std = guard.std.take();
                drop(guard); // no-op: the std guard was taken out
                             // The real duration is irrelevant under the model: the
                             // timeout is a schedulable nondeterministic event.
                let timed_out = sched::model_condvar_wait(
                    &ctx,
                    self.addr(),
                    mx.addr(),
                    timeout.is_some(),
                    loc,
                    || drop(std.take()),
                );
                // Granted with model ownership restored: std lock is free.
                let std = mx.lock_std();
                (MutexGuard { std: Some(std), mx, mode, loc }, timed_out)
            }
            GuardMode::Live | GuardMode::Plain => {
                if mode == GuardMode::Live {
                    let addr = mx.addr();
                    detect::with_global(|d, tid| d.lock_released(tid, addr));
                }
                let std = guard.std.take().expect("guard released by condvar wait");
                drop(guard);
                let (std, timed_out) = if let Some(timeout) = timeout {
                    let (g, r) =
                        self.inner.wait_timeout(std, timeout).unwrap_or_else(|e| e.into_inner());
                    (g, r.timed_out())
                } else {
                    (self.inner.wait(std).unwrap_or_else(|e| e.into_inner()), false)
                };
                if mode == GuardMode::Live {
                    let addr = mx.addr();
                    detect::with_global(|d, tid| d.lock_acquired(tid, addr));
                }
                (MutexGuard { std: Some(std), mx, mode, loc }, timed_out)
            }
        }
    }

    /// Wakes one waiter.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if let Some(ctx) = sched::current() {
            sched::model_condvar_notify(&ctx, self.addr(), false, Location::caller());
            return;
        }
        self.inner.notify_one()
    }

    /// Wakes all waiters.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if let Some(ctx) = sched::current() {
            sched::model_condvar_notify(&ctx, self.addr(), true, Location::caller());
            return;
        }
        self.inner.notify_all()
    }
}

// ---------------------------------------------------------------------------
// Probe.
// ---------------------------------------------------------------------------

/// Annotation for a non-atomic publication the checker should verify — e.g.
/// the `Arc<ShardView>` slot an epoch counter guards. Call
/// [`write`](Probe::write) where the data is published and
/// [`read`](Probe::read) where it is consumed; the detector then checks
/// every read is ordered after the write by real synchronization. Free when
/// instrumentation is off. Deliberately one byte (not a ZST) so distinct
/// probes have distinct addresses.
#[derive(Debug)]
pub struct Probe(#[allow(dead_code)] u8);

impl Probe {
    /// Creates a probe (usable in statics/consts).
    pub const fn new() -> Self {
        Probe(0)
    }

    /// Records a consume of the annotated data.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn read(&self, what: &'static str) {
        let _ = what;
        #[cfg(feature = "model")]
        {
            let addr = self as *const Self as usize;
            let loc = Location::caller();
            if let Some(ctx) = sched::current() {
                sched::model_data(&ctx, addr, what, false, loc, || ());
            } else if detect::detecting() {
                detect::with_global(|d, tid| d.data_read(tid, addr, what, loc));
            }
        }
    }

    /// Records a publication of the annotated data.
    #[cfg_attr(feature = "model", track_caller)]
    #[inline(always)]
    pub fn write(&self, what: &'static str) {
        let _ = what;
        #[cfg(feature = "model")]
        {
            let addr = self as *const Self as usize;
            let loc = Location::caller();
            if let Some(ctx) = sched::current() {
                sched::model_data(&ctx, addr, what, true, loc, || ());
            } else if detect::detecting() {
                detect::with_global(|d, tid| d.data_write(tid, addr, what, loc));
            }
        }
    }
}

impl Default for Probe {
    fn default() -> Self {
        Probe::new()
    }
}
