//! Model of the serve batcher's worker-pull queue
//! (`crates/serve/src/batcher.rs`): submitters push under a mutex and
//! notify arrival; the worker parks while the queue is empty, lingers
//! (timed wait) for a fuller batch when it is short, drains, and
//! acknowledges; shutdown wakes the worker to drain and exit.
//!
//! The model is a ping-pong: the submitter waits for its item to be
//! consumed before pushing the next one, which makes lost wakeups
//! *deadlocks* instead of delays. The linger wait is a timed wait, which
//! the scheduler may complete as a timeout at any legal point — both the
//! "woken by arrival" and "timed out, drain partial batch" branches of the
//! production worker loop get explored.

use std::sync::Arc;
use std::time::Duration;

use crate::model::{explore, ExploreOpts, RawCell, Report};
use crate::sync::{Condvar, Mutex};

/// Seeded bugs for the batcher model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// The worker's park loop is an `if` instead of a `while` around its
    /// deadline wait: a timeout (or any wake that isn't an arrival) falls
    /// through to an unconditional pop of an empty queue.
    IfInsteadOfWhile,
    /// The submitter notifies arrival *before* publishing the item (and
    /// outside the lock): the wakeup can land in the window where the
    /// worker has decided to wait but is not yet a waiter — a classic lost
    /// wakeup, surfacing as a deadlock.
    NotifyBeforePush,
    /// The linger loop waits for a full batch without re-checking
    /// shutdown (untimed): a final short batch parks the worker forever.
    LingerIgnoresShutdown,
}

impl Bug {
    /// All batcher bugs.
    pub const ALL: &'static [Bug] =
        &[Bug::IfInsteadOfWhile, Bug::NotifyBeforePush, Bug::LingerIgnoresShutdown];
}

const ITEMS: u64 = 2;
const BATCH: usize = 2;

struct State {
    queue: Vec<u64>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    arrived: Condvar,
    consumed: Condvar,
    /// Total items drained, written only by the worker; the owner reads it
    /// after joining, so the join edge must make it visible.
    drained: RawCell<u64>,
}

fn worker_body(sh: &Shared, bug: Option<Bug>) {
    let mut total = 0u64;
    loop {
        let mut st = sh.state.lock();
        if bug == Some(Bug::IfInsteadOfWhile) {
            // Seeded bug: the production park is a deadline wait in a
            // re-check loop; one `if`-guarded wait lets a timeout fall
            // through with nothing queued.
            if st.queue.is_empty() && !st.shutdown {
                st = sh.arrived.wait_timeout(st, Duration::from_millis(1)).0;
            }
            let item = st.queue.pop().expect("woken with an empty queue");
            let _ = item;
            total += 1;
        } else {
            while st.queue.is_empty() && !st.shutdown {
                st = sh.arrived.wait(st);
            }
            if st.queue.is_empty() {
                // Shutdown with nothing left.
                sh.drained.write(total);
                return;
            }
            if bug == Some(Bug::LingerIgnoresShutdown) {
                // Seeded bug: hold out for a full batch unconditionally.
                while st.queue.len() < BATCH {
                    st = sh.arrived.wait(st);
                }
            } else if st.queue.len() < BATCH && !st.shutdown {
                // Linger for a fuller batch; the timeout is a schedulable
                // event, so both branches are explored.
                let (guard, _timed_out) = sh.arrived.wait_timeout(st, Duration::from_millis(1));
                st = guard;
            }
            total += st.queue.drain(..).count() as u64;
        }
        sh.drained.write(total);
        sh.consumed.notify_all();
        drop(st);
        if total >= ITEMS {
            // Keep looping only for the shutdown signal.
            let mut st = sh.state.lock();
            while !st.shutdown {
                st = sh.arrived.wait(st);
            }
            return;
        }
    }
}

fn submitter_body(sh: &Shared, bug: Option<Bug>) {
    for item in 0..ITEMS {
        if bug == Some(Bug::NotifyBeforePush) {
            // Seeded bug: signal first, publish after.
            sh.arrived.notify_one();
            let mut st = sh.state.lock();
            st.queue.push(item);
            drop(st);
        } else {
            let mut st = sh.state.lock();
            st.queue.push(item);
            drop(st);
            sh.arrived.notify_one();
        }
        // Ping-pong: wait for the worker to consume before the next push,
        // so a lost wakeup is a deadlock rather than a delay.
        let mut st = sh.state.lock();
        while !st.queue.is_empty() {
            st = sh.consumed.wait(st);
        }
    }
}

/// Explores the model; `bug` seeds one mutation, `None` is the clean
/// protocol (must pass exhaustively).
pub fn run(bug: Option<Bug>, opts: ExploreOpts) -> Report {
    explore(opts, move || {
        let sh = Arc::new(Shared {
            state: Mutex::new(State { queue: Vec::new(), shutdown: false }),
            arrived: Condvar::new(),
            consumed: Condvar::new(),
            drained: RawCell::new("Batcher.drained", 0),
        });

        let worker = {
            let sh = Arc::clone(&sh);
            crate::model::spawn("batch-worker", move || worker_body(&sh, bug))
        };
        let submitter = {
            let sh = Arc::clone(&sh);
            crate::model::spawn("submitter", move || submitter_body(&sh, bug))
        };

        submitter.join();
        {
            let mut st = sh.state.lock();
            st.shutdown = true;
            sh.arrived.notify_all();
        }
        worker.join();
        assert_eq!(sh.drained.read(), ITEMS, "worker exited before draining everything");
    })
}
