//! Model of the tensor arena's buffer pooling
//! (`crates/tensor/src/arena.rs`): per-class free lists under a mutex,
//! scope depth tracked by an atomic counter, and buffer *contents* whose
//! ownership transfers through the free-list lock — a recycled buffer's
//! previous writes must be ordered before the next owner's accesses by
//! that lock, or reuse corrupts tensors.
//!
//! Two workers each take a buffer (reusing a pooled one when available,
//! "allocating fresh" otherwise), use it exclusively, and recycle it. The
//! pooled-bytes aggregate is modeled as non-atomic data guarded by the
//! pool lock, mirroring the invariant that arena accounting is only
//! mutated with the class lock held.

use std::sync::Arc;

use crate::model::{explore, ExploreOpts, RawCell, Report};
use crate::sync::{AtomicUsize, Mutex, Ordering};

/// Seeded bugs for the arena model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// The pooled-bytes accounting is updated *after* releasing the pool
    /// lock: two recyclers race on the aggregate (the "missed fence in
    /// scope exit" class — the write escapes the critical section).
    StatsOutsideLock,
    /// A buffer is taken by peeking the free list under the lock but
    /// popping later: two workers can observe the same head and both use
    /// the buffer.
    TakeOutsideLock,
}

impl Bug {
    /// All arena bugs.
    pub const ALL: &'static [Bug] = &[Bug::StatsOutsideLock, Bug::TakeOutsideLock];
}

const WORKERS: usize = 2;

struct Pool {
    /// Free-list of buffer indices; starts with one pooled buffer.
    free: Mutex<Vec<usize>>,
    /// Buffer contents; index 0 is pooled, 1.. are the "fresh" ones.
    bufs: [RawCell<u64>; 1 + WORKERS],
    /// Non-atomic accounting guarded by `free`'s lock.
    bytes: RawCell<u64>,
    depth: AtomicUsize,
}

fn worker_body(pool: &Pool, me: usize, bug: Option<Bug>) {
    // ordering: Relaxed — scope depth is a counter used for accounting and
    // leak asserts, never for publication.
    pool.depth.fetch_add(1, Ordering::Relaxed);

    // Take: reuse a pooled buffer, or fall back to our private fresh slot.
    let idx = if bug == Some(Bug::TakeOutsideLock) {
        // Seeded bug: peek now, pop later — the classic TOCTOU.
        let peeked = pool.free.lock().last().copied();
        let idx = peeked.unwrap_or(1 + me);
        pool.free.lock().pop();
        idx
    } else {
        let taken = pool.free.lock().pop();
        taken.unwrap_or(1 + me)
    };

    // Use the buffer exclusively.
    let tag = me as u64 + 10;
    pool.bufs[idx].write(tag);
    assert_eq!(pool.bufs[idx].read(), tag, "pooled buffer shared between owners");

    // Recycle: return the buffer and account for it under the lock.
    if bug == Some(Bug::StatsOutsideLock) {
        // Seeded bug: the aggregate update escapes the critical section.
        pool.free.lock().push(idx);
        let bytes = pool.bytes.read();
        pool.bytes.write(bytes + 8);
    } else {
        let mut free = pool.free.lock();
        free.push(idx);
        let bytes = pool.bytes.read();
        pool.bytes.write(bytes + 8);
        drop(free);
    }

    pool.depth.fetch_sub(1, Ordering::Relaxed);
}

/// Explores the model; `bug` seeds one mutation, `None` is the clean
/// protocol (must pass exhaustively).
pub fn run(bug: Option<Bug>, opts: ExploreOpts) -> Report {
    explore(opts, move || {
        let pool = Arc::new(Pool {
            free: Mutex::new(vec![0]),
            bufs: [
                RawCell::new("Arena.buf", 0),
                RawCell::new("Arena.fresh[0]", 0),
                RawCell::new("Arena.fresh[1]", 0),
            ],
            bytes: RawCell::new("Arena.pooled_bytes", 0),
            depth: AtomicUsize::new(0),
        });

        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let pool = Arc::clone(&pool);
                crate::model::spawn(&format!("arena-worker-{w}"), move || {
                    worker_body(&pool, w, bug)
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(pool.depth.load(Ordering::Relaxed), 0, "unbalanced scope depth");
        assert_eq!(pool.bytes.read(), 8 * WORKERS as u64, "lost accounting update");
    })
}
