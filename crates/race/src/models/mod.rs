//! The model suite: self-contained cores of the workspace's real
//! concurrent protocols, rebuilt on [`crate::sync`] primitives so
//! [`crate::model::explore`] can exhaust their interleavings.
//!
//! Each module models one production protocol and exposes:
//!
//! - `Bug` — the seeded concurrency bugs for that protocol (used by the
//!   mutation self-test and `racebench` to prove the checker catches them);
//! - `run(bug, opts)` — explore the model, optionally with one bug seeded;
//!   `run(None, …)` is the clean protocol and must pass exhaustively.
//!
//! Models deliberately stay small (2–4 threads, a handful of operations):
//! the point is to exhaust the schedule space of the *protocol*, not to
//! re-run the production code. The production code itself is checked by
//! the live detector (`GS_RACE=1`) over the real test suites; the models
//! are where ordering mutations become deterministic, minimal traces.

pub mod arena;
pub mod batcher;
pub mod epoch;
pub mod pool;

/// A seeded bug from any model, for enumeration in benches and tests.
#[derive(Clone, Copy, Debug)]
pub enum AnyBug {
    /// An `EpochCell` publication bug.
    Epoch(epoch::Bug),
    /// A pool fork-join bug.
    Pool(pool::Bug),
    /// A batcher queue/linger bug.
    Batcher(batcher::Bug),
    /// An arena pooling bug.
    Arena(arena::Bug),
}

impl AnyBug {
    /// Every seeded bug in the suite.
    pub fn all() -> Vec<AnyBug> {
        let mut out = Vec::new();
        out.extend(epoch::Bug::ALL.iter().map(|&b| AnyBug::Epoch(b)));
        out.extend(pool::Bug::ALL.iter().map(|&b| AnyBug::Pool(b)));
        out.extend(batcher::Bug::ALL.iter().map(|&b| AnyBug::Batcher(b)));
        out.extend(arena::Bug::ALL.iter().map(|&b| AnyBug::Arena(b)));
        out
    }

    /// Stable name for reports.
    pub fn name(&self) -> String {
        match self {
            AnyBug::Epoch(b) => format!("epoch::{b:?}"),
            AnyBug::Pool(b) => format!("pool::{b:?}"),
            AnyBug::Batcher(b) => format!("batcher::{b:?}"),
            AnyBug::Arena(b) => format!("arena::{b:?}"),
        }
    }

    /// Explores the owning model with this bug seeded.
    pub fn run(&self, opts: crate::model::ExploreOpts) -> crate::model::Report {
        match self {
            AnyBug::Epoch(b) => epoch::run(Some(*b), opts),
            AnyBug::Pool(b) => pool::run(Some(*b), opts),
            AnyBug::Batcher(b) => batcher::run(Some(*b), opts),
            AnyBug::Arena(b) => arena::run(Some(*b), opts),
        }
    }
}
