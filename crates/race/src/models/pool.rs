//! Model of the `gs-par` fork-join core (`crates/par/src/lib.rs`): a scope
//! with `n` index slots, helpers that claim indices with an atomic cursor
//! and write results, a mutex/condvar completion protocol the owner waits
//! on, and the owner consuming every result afterwards.
//!
//! The contract under test is the one `Scope` documents: claim
//! disjointness comes from the *atomicity* of `next.fetch_add` (Relaxed is
//! enough), while result *visibility* comes from the pending-counter mutex
//! — each helper's writes are ordered before the owner's reads by the
//! helper's final release of that mutex.

use std::sync::Arc;

use crate::model::{explore, ExploreOpts, RawCell, Report};
use crate::sync::{AtomicUsize, Condvar, Mutex, Ordering};

/// Seeded bugs for the fork-join model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// A helper reports completion (decrements `pending`) *before* writing
    /// its claimed slots — the owner can consume a slot concurrently with
    /// the helper's write (the "double-publish"/early-done bug).
    EarlyDone,
    /// The last helper decrements `pending` to zero but never notifies the
    /// completion condvar: the owner parks forever.
    MissingNotify,
    /// Index claiming is a non-atomic load+store instead of `fetch_add`:
    /// two helpers can claim the same slot and race on its result.
    NonAtomicClaim,
}

impl Bug {
    /// All pool bugs.
    pub const ALL: &'static [Bug] = &[Bug::EarlyDone, Bug::MissingNotify, Bug::NonAtomicClaim];
}

const SLOTS: usize = 3;
const HELPERS: usize = 2;

struct Scope {
    next: AtomicUsize,
    results: [RawCell<u64>; SLOTS],
    pending: Mutex<usize>,
    done: Condvar,
}

fn claim(scope: &Scope, bug: Option<Bug>) -> usize {
    if bug == Some(Bug::NonAtomicClaim) {
        // Seeded bug: a load+store pair is not a claim.
        let i = scope.next.load(Ordering::Relaxed);
        scope.next.store(i + 1, Ordering::Relaxed);
        i
    } else {
        // ordering: Relaxed — disjointness needs only RMW atomicity; the
        // owner's visibility of the slot writes comes from `pending`.
        scope.next.fetch_add(1, Ordering::Relaxed)
    }
}

fn helper_body(scope: &Scope, bug: Option<Bug>, last: bool) {
    let mut claimed: Vec<usize> = Vec::new();
    if bug == Some(Bug::EarlyDone) {
        // Seeded bug: claim and report done first, write after.
        loop {
            let i = claim(scope, bug);
            if i >= SLOTS {
                break;
            }
            claimed.push(i);
        }
        finish(scope, bug, last);
        for &i in &claimed {
            scope.results[i].write(i as u64 + 1);
        }
        return;
    }
    loop {
        let i = claim(scope, bug);
        if i >= SLOTS {
            break;
        }
        scope.results[i].write(i as u64 + 1);
    }
    finish(scope, bug, last);
}

fn finish(scope: &Scope, bug: Option<Bug>, last: bool) {
    let mut pending = scope.pending.lock();
    *pending -= 1;
    if *pending == 0 && !(bug == Some(Bug::MissingNotify) && last) {
        scope.done.notify_all();
    }
}

/// Explores the model; `bug` seeds one mutation, `None` is the clean
/// protocol (must pass exhaustively).
pub fn run(bug: Option<Bug>, opts: ExploreOpts) -> Report {
    explore(opts, move || {
        let scope = Arc::new(Scope {
            next: AtomicUsize::new(0),
            results: [
                RawCell::new("Scope.results[0]", 0),
                RawCell::new("Scope.results[1]", 0),
                RawCell::new("Scope.results[2]", 0),
            ],
            pending: Mutex::new(HELPERS),
            done: Condvar::new(),
        });

        let handles: Vec<_> = (0..HELPERS)
            .map(|h| {
                let scope = Arc::clone(&scope);
                crate::model::spawn(&format!("helper-{h}"), move || {
                    helper_body(&scope, bug, h == HELPERS - 1)
                })
            })
            .collect();

        // The owner parks until every helper has reported done, like
        // `Scope::wait_helpers`.
        {
            let mut pending = scope.pending.lock();
            while *pending > 0 {
                pending = scope.done.wait(pending);
            }
        }
        // Every slot must now be written and visible.
        for (i, slot) in scope.results.iter().enumerate() {
            assert_eq!(slot.read(), i as u64 + 1, "slot {i} not fully published");
        }
        for h in handles {
            h.join();
        }
    })
}
