//! Model of the store's `EpochCell` publication protocol
//! (`crates/store/src/view.rs`): a writer folds a new `ShardView`, publishes
//! it, and bumps the epoch with `Release`; readers check the epoch with
//! `Acquire` and, on a change, consume the published view.
//!
//! The model is the *lock-free core* of that contract: the payload is a
//! [`RawCell`] (standing in for the `Arc<ShardView>` slot) guarded only by
//! the epoch ordering, so the `Release`/`Acquire` pair is load-bearing —
//! exactly the edge the production `// ordering:` comments promise. The
//! production code additionally holds a mutex around the slot; the model
//! drops it so that weakening the orderings is *observable* instead of
//! being masked by the lock.

use std::sync::Arc;

use crate::model::{explore, ExploreOpts, RawCell, Report};
use crate::sync::{AtomicU64, Ordering};

/// Seeded bugs for the epoch publication model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// `EpochCell::publish` bumps the epoch with `Relaxed` instead of
    /// `Release`: the payload write is no longer ordered before the bump,
    /// so a reader that observes the new epoch races the payload write.
    RelaxedPublish,
    /// The epoch is bumped *before* the payload is written: a reader can
    /// observe the new epoch and read a half-published view.
    BumpBeforeStore,
    /// Readers check the epoch with `Relaxed` instead of `Acquire`: the
    /// release edge exists but the reader never joins it.
    ReadWithoutAcquire,
}

impl Bug {
    /// All epoch bugs.
    pub const ALL: &'static [Bug] =
        &[Bug::RelaxedPublish, Bug::BumpBeforeStore, Bug::ReadWithoutAcquire];
}

struct Cell {
    epoch: AtomicU64,
    /// Stands in for the `Arc<ShardView>` slot: written once by the
    /// folder, read by any reader that observed the epoch bump.
    payload: RawCell<u64>,
}

const PUBLISHED: u64 = 42;

/// Explores the model; `bug` seeds one mutation, `None` is the clean
/// protocol (must pass exhaustively).
pub fn run(bug: Option<Bug>, opts: ExploreOpts) -> Report {
    explore(opts, move || {
        let cell =
            Arc::new(Cell { epoch: AtomicU64::new(0), payload: RawCell::new("EpochCell.slot", 0) });

        let store_ordering = if bug == Some(Bug::RelaxedPublish) {
            Ordering::Relaxed
        } else {
            // ordering: Release — the payload write must be visible to any
            // reader that observes the bumped epoch.
            Ordering::Release
        };
        let load_ordering = if bug == Some(Bug::ReadWithoutAcquire) {
            Ordering::Relaxed
        } else {
            // ordering: Acquire — pairs with the writer's Release bump.
            Ordering::Acquire
        };

        let writer = {
            let cell = Arc::clone(&cell);
            crate::model::spawn("swap-writer", move || {
                if bug == Some(Bug::BumpBeforeStore) {
                    cell.epoch.store(1, store_ordering);
                    cell.payload.write(PUBLISHED);
                } else {
                    // Fold the new view, then publish: write, bump.
                    cell.payload.write(PUBLISHED);
                    cell.epoch.store(1, store_ordering);
                }
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|i| {
                let cell = Arc::clone(&cell);
                crate::model::spawn(&format!("reader-{i}"), move || {
                    if cell.epoch.load(load_ordering) != 0 {
                        // The epoch changed: the view must be fully
                        // published.
                        assert_eq!(
                            cell.payload.read(),
                            PUBLISHED,
                            "reader observed a half-published view"
                        );
                    }
                })
            })
            .collect();

        writer.join();
        for r in readers {
            r.join();
        }
        // After joining everyone, the view is published regardless of what
        // each reader observed in flight.
        assert_eq!(cell.payload.read(), PUBLISHED);
    })
}
