//! Pins the cost of the `gs_race::sync` wrappers against raw std.
//!
//! Without the `model` feature the wrappers are `#[inline(always)]`
//! passthroughs and must be indistinguishable from std (bound 1.5x, all
//! slack for timer noise — same discipline as gs-obs's `prof_overhead`).
//! With the feature compiled in but the gate off (no model thread, live
//! detector disabled), each op pays one thread-local check and one relaxed
//! load; that path gets a loose sanity bound, while the hard ≤1.05x
//! product gate lives in `racebench` on the real pool stress workload.

use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 2_000_000;
const TRIALS: usize = 5;

fn best_of<F: FnMut() -> u64>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn measure_ratio() -> f64 {
    let wrapped = gs_race::sync::AtomicU64::new(0);
    let raw = std::sync::atomic::AtomicU64::new(0);
    // Warmup (and force the live-detector gate to settle).
    for _ in 0..10_000 {
        wrapped.fetch_add(1, gs_race::sync::Ordering::Relaxed);
        raw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    let raw_ns = best_of(|| {
        for _ in 0..ITERS {
            black_box(raw.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        }
        raw.load(std::sync::atomic::Ordering::Relaxed)
    });
    let wrapped_ns = best_of(|| {
        for _ in 0..ITERS {
            black_box(wrapped.fetch_add(1, gs_race::sync::Ordering::Relaxed));
        }
        wrapped.load(gs_race::sync::Ordering::Relaxed)
    });
    wrapped_ns / raw_ns
}

#[cfg(not(feature = "model"))]
#[test]
fn passthrough_wrappers_are_free() {
    let ratio = measure_ratio();
    assert!(
        ratio < 1.5,
        "uninstrumented wrapper costs {ratio:.3}x raw std (expected ~1.0x; bound is noise slack)"
    );
}

#[cfg(feature = "model")]
#[test]
fn gated_off_wrappers_stay_cheap() {
    gs_race::set_detecting(false);
    let ratio = measure_ratio();
    assert!(
        ratio < 25.0,
        "feature-compiled but gated-off wrapper costs {ratio:.1}x raw std — the gate got expensive"
    );
}
