//! Mutation self-test: every seeded concurrency bug in the model suite
//! must be caught with a concrete failure — a race report with both access
//! sites, a deadlock with every blocked thread's state, or an assertion
//! panic — plus the schedule trace that produced it. Together with the
//! clean runs in `interleavings.rs` (zero findings), this pins the
//! checker's discrimination the same way `gs-check`'s mutation tests pin
//! the shape checker.

#![cfg(feature = "model")]

use gs_race::model::{ExploreOpts, Failure, FailureKind};
use gs_race::models::{arena, batcher, epoch, pool, AnyBug};

fn opts() -> ExploreOpts {
    ExploreOpts { max_schedules: 100_000, max_preemptions: 2, max_steps: 10_000, random_seed: None }
}

/// The failure classes a bug may legitimately surface as. Several bugs
/// race the detector against an assertion on the same schedule family;
/// whichever the minimal schedule hits first is a valid catch.
fn expected(bug: &AnyBug) -> &'static [&'static str] {
    match bug {
        AnyBug::Epoch(epoch::Bug::RelaxedPublish) => &["race"],
        AnyBug::Epoch(epoch::Bug::BumpBeforeStore) => &["race", "panic"],
        AnyBug::Epoch(epoch::Bug::ReadWithoutAcquire) => &["race"],
        AnyBug::Pool(pool::Bug::EarlyDone) => &["race", "panic"],
        AnyBug::Pool(pool::Bug::MissingNotify) => &["deadlock"],
        AnyBug::Pool(pool::Bug::NonAtomicClaim) => &["race", "panic"],
        AnyBug::Batcher(batcher::Bug::IfInsteadOfWhile) => &["panic"],
        AnyBug::Batcher(batcher::Bug::NotifyBeforePush) => &["deadlock"],
        AnyBug::Batcher(batcher::Bug::LingerIgnoresShutdown) => &["deadlock"],
        AnyBug::Arena(arena::Bug::StatsOutsideLock) => &["race", "panic"],
        AnyBug::Arena(arena::Bug::TakeOutsideLock) => &["race", "panic"],
    }
}

fn kind_name(failure: &Failure) -> &'static str {
    match failure.kind {
        FailureKind::Panic(_) => "panic",
        FailureKind::Deadlock(_) => "deadlock",
        FailureKind::Race(_) => "race",
        FailureKind::StepBudget(_) => "step-budget",
    }
}

#[test]
fn suite_has_at_least_ten_bugs() {
    assert!(AnyBug::all().len() >= 10, "issue requires >= 10 seeded bugs");
}

#[test]
fn every_seeded_bug_is_caught_with_a_trace() {
    for bug in AnyBug::all() {
        let report = bug.run(opts());
        let failure = report.failure.as_ref().unwrap_or_else(|| {
            panic!("seeded bug {} escaped {} schedules", bug.name(), report.schedules)
        });
        let kind = kind_name(failure);
        assert!(
            expected(&bug).contains(&kind),
            "bug {} caught as `{kind}`, expected one of {:?}\n{failure}",
            bug.name(),
            expected(&bug),
        );
        // The trace must be concrete: non-empty, renderable, and pointing
        // into this crate's model sources.
        assert!(!failure.trace.is_empty(), "bug {} caught without a trace", bug.name());
        let rendered = failure.to_string();
        assert!(
            rendered.contains("schedule #"),
            "trace rendering missing schedule header for {}:\n{rendered}",
            bug.name()
        );
        assert!(
            failure.trace.iter().any(|ev| ev.loc.file().contains("models")),
            "trace for {} has no model-source provenance",
            bug.name()
        );
    }
}

#[test]
fn race_reports_carry_both_sites() {
    // The publication bug must name the annotated location and both
    // conflicting accesses with file:line provenance.
    let report = epoch::run(Some(epoch::Bug::RelaxedPublish), opts());
    let failure = report.failure.expect("RelaxedPublish must be caught");
    let FailureKind::Race(race) = &failure.kind else {
        panic!("expected a race, got: {failure}");
    };
    assert_eq!(race.what, "EpochCell.slot");
    assert_eq!(race.first.access, "write");
    assert_eq!(race.second.access, "read");
    assert!(race.first.loc.file().contains("epoch.rs"));
    assert!(race.second.loc.file().contains("epoch.rs"));
    assert_ne!(race.first.tid, race.second.tid);
}

#[test]
fn deadlock_reports_name_blocked_threads() {
    let report = batcher::run(Some(batcher::Bug::LingerIgnoresShutdown), opts());
    let failure = report.failure.expect("LingerIgnoresShutdown must be caught");
    let FailureKind::Deadlock(blocked) = &failure.kind else {
        panic!("expected a deadlock, got: {failure}");
    };
    assert!(
        blocked.iter().any(|line| line.contains("batch-worker")),
        "deadlock report must name the lingering worker: {blocked:?}"
    );
}

#[test]
fn bugs_found_under_random_exploration_too() {
    // Random mode is the fallback for models too big to exhaust; it must
    // still catch an easy publication bug quickly.
    let o = ExploreOpts {
        max_schedules: 500,
        max_preemptions: 2,
        max_steps: 10_000,
        random_seed: Some(7),
    };
    let report = epoch::run(Some(epoch::Bug::RelaxedPublish), o);
    assert!(report.failure.is_some(), "random mode missed RelaxedPublish in 500 schedules");
}
