//! Live-detector test: the process-global vector-clock engine, driven by
//! real OS threads through the `gs_race::sync` wrappers (the exact path the
//! instrumented production suites take under `GS_RACE=1`).
//!
//! One test function on purpose: the live detector is process-global, so
//! the scenarios run sequentially in a controlled order.

#![cfg(feature = "model")]

use std::sync::Arc;

use gs_race::sync::{AtomicU64, Mutex, Ordering, Probe};
use gs_race::{set_detecting, take_live_races};

struct MutexShared {
    m: Mutex<u64>,
    probe: Probe,
}

struct FlagShared {
    flag: AtomicU64,
    probe: Probe,
}

struct RacyShared {
    probe: Probe,
}

#[test]
fn live_detector_flags_only_real_races() {
    set_detecting(true);
    assert!(take_live_races().is_empty());

    // Scenario A: probe accesses ordered through a wrapped mutex — clean.
    let shared = Arc::new(MutexShared { m: Mutex::new(0), probe: Probe::new() });
    let writer = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut g = s.m.lock();
            *g += 1;
            s.probe.write("mutexed-payload");
        })
    };
    let reader = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || {
            let g = s.m.lock();
            let _ = *g;
            s.probe.read("mutexed-payload");
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert!(take_live_races().is_empty(), "mutex-ordered accesses must not be flagged");

    // Scenario B: probe accesses ordered by a Release store / Acquire spin
    // — clean.
    let shared = Arc::new(FlagShared { flag: AtomicU64::new(0), probe: Probe::new() });
    let publisher = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || {
            s.probe.write("flagged-payload");
            s.flag.store(1, Ordering::Release);
        })
    };
    let consumer = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || {
            while s.flag.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            s.probe.read("flagged-payload");
        })
    };
    publisher.join().unwrap();
    consumer.join().unwrap();
    assert!(take_live_races().is_empty(), "release/acquire-ordered accesses must not be flagged");

    // Scenario C: two writers with no synchronization at all — the live
    // detector has no spawn edges, so this is a race in every execution.
    let shared = Arc::new(RacyShared { probe: Probe::new() });
    let t1 = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || s.probe.write("unsynced"))
    };
    let t2 = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || s.probe.write("unsynced"))
    };
    t1.join().unwrap();
    t2.join().unwrap();
    let races = take_live_races();
    assert!(!races.is_empty(), "unsynchronized conflicting writes must be flagged");
    assert_eq!(races[0].what, "unsynced");
    assert!(races[0].first.loc.file().contains("detector_live"));
    assert!(races[0].second.loc.file().contains("detector_live"));

    set_detecting(false);
}
