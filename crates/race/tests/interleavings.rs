//! Clean-model interleaving suite: every protocol model must pass under
//! schedule exploration with zero findings — no race, no deadlock, no
//! assertion failure — and the smaller models must be *exhausted* within
//! the preemption bound, making the pass a proof up to that bound.

#![cfg(feature = "model")]

use gs_race::model::ExploreOpts;
use gs_race::models::{arena, batcher, epoch, pool};

fn opts() -> ExploreOpts {
    ExploreOpts { max_schedules: 100_000, max_preemptions: 2, max_steps: 10_000, random_seed: None }
}

#[test]
fn epoch_clean_exhaustive() {
    let report = epoch::run(None, opts());
    report.assert_ok();
    assert!(report.exhaustive, "epoch model should exhaust within {} schedules", report.schedules);
    assert!(report.schedules > 10, "suspiciously few schedules: {}", report.schedules);
}

#[test]
fn pool_clean_exhaustive() {
    let report = pool::run(None, opts());
    report.assert_ok();
    assert!(report.exhaustive, "pool model should exhaust within {} schedules", report.schedules);
}

#[test]
fn batcher_clean() {
    let report = batcher::run(None, opts());
    report.assert_ok();
    assert!(report.schedules > 10, "suspiciously few schedules: {}", report.schedules);
}

#[test]
fn arena_clean_exhaustive() {
    let report = arena::run(None, opts());
    report.assert_ok();
    assert!(report.exhaustive, "arena model should exhaust within {} schedules", report.schedules);
}

#[test]
fn random_mode_clean() {
    // The bounded-random explorer must also find nothing on clean models.
    for seed in [1u64, 0xDEAD_BEEF] {
        let o = ExploreOpts {
            max_schedules: 200,
            max_preemptions: 2,
            max_steps: 10_000,
            random_seed: Some(seed),
        };
        epoch::run(None, o.clone()).assert_ok();
        batcher::run(None, o.clone()).assert_ok();
    }
}
