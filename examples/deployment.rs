//! A miniature version of the paper's §5.1 deployment: train GoalSpotter,
//! sweep a multi-company report corpus (a scaled-down Table 5), fill the
//! structured database, and print the per-company summary plus the top
//! objectives (a scaled-down Table 6).
//!
//! Run with: `cargo run --release --example deployment`

use goalspotter::models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
use goalspotter::pipeline::{process_corpus, GoalSpotter, GoalSpotterConfig};
use goalspotter::store::ObjectiveStore;
use goalspotter::text::labels::LabelSet;

fn main() {
    // Development phase.
    let labels = LabelSet::sustainability_goals();
    let history = goalspotter::data::sustaingoals::generate(250, 5);
    let train: Vec<&goalspotter::core::Objective> = history.objectives.iter().collect();
    let noise: Vec<&str> = goalspotter::data::banks::NOISE_BLOCKS.to_vec();
    println!("training GoalSpotter on {} historical objectives...", train.len());
    let gs = GoalSpotter::develop(
        &train,
        &noise,
        &labels,
        GoalSpotterConfig {
            extractor: ExtractorOptions {
                model: TransformerConfig {
                    d_model: 32,
                    n_layers: 1,
                    d_ff: 64,
                    subword_budget: 400,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 10, lr: 2e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        },
    );

    // Production: a 2%-scale version of the paper's 14-company corpus.
    let corpus = goalspotter::data::deployment::generate_corpus(0.02, 11);
    println!("processing {} reports / {} pages...", corpus.reports.len(), corpus.num_pages());
    let store = ObjectiveStore::new();
    let stats = process_corpus(&gs, &corpus, &store);

    println!("\nper-company summary (Table 5 at 2% scale):");
    println!("  {:<8} {:>6} {:>7} {:>12}", "Company", "#Docs", "#Pages", "#Objectives");
    for s in &stats {
        println!(
            "  {:<8} {:>6} {:>7} {:>12}",
            s.company, s.documents, s.pages, s.extracted_objectives
        );
    }
    println!("  total structured records: {}", store.len());

    println!("\ntop objective per company (Table 6 style):");
    for s in &stats {
        if let Some(top) = store.top_objectives(&s.company, 1).into_iter().next() {
            let objective: String = top.objective.chars().take(70).collect();
            println!(
                "  {:<5} {:<72} {}",
                top.company,
                objective,
                top.deadline.map(|d| format!("deadline {d}")).unwrap_or_default()
            );
        }
    }
}
