//! Report-level analysis (paper Figure 1 + §5.2): run GoalSpotter over a
//! single sustainability report — detect the objective blocks among the
//! boilerplate, extract their details, and build the structured table.
//!
//! Run with: `cargo run --release --example single_report`

use goalspotter::data::documents::{generate_report, ReportConfig};
use goalspotter::models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
use goalspotter::pipeline::{process_report, GoalSpotter, GoalSpotterConfig};
use goalspotter::store::ObjectiveStore;
use goalspotter::text::labels::LabelSet;
use rand::SeedableRng;

fn main() {
    // Development phase: train the system on historical annotations.
    let labels = LabelSet::sustainability_goals();
    let history = goalspotter::data::sustaingoals::generate(250, 9);
    let train: Vec<&goalspotter::core::Objective> = history.objectives.iter().collect();
    let noise: Vec<&str> = goalspotter::data::banks::NOISE_BLOCKS.to_vec();
    println!("training GoalSpotter on {} historical objectives...", train.len());
    let gs = GoalSpotter::develop(
        &train,
        &noise,
        &labels,
        GoalSpotterConfig {
            extractor: ExtractorOptions {
                model: TransformerConfig {
                    d_model: 32,
                    n_layers: 1,
                    d_ff: 64,
                    subword_budget: 400,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 10, lr: 2e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        },
    );

    // A fresh report to analyze.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let report = generate_report(
        "DemoCorp",
        "DemoCorp Sustainability Report 2025",
        8,
        6,
        &ReportConfig::default(),
        &mut rng,
    );

    // Figure 1: show detection on the first page.
    println!("\npage 1 blocks (detected objectives in [brackets]):");
    for block in &report.pages[0].blocks {
        let marker = if gs.detect(&block.text) { "[OBJECTIVE]" } else { "           " };
        let preview: String = block.text.chars().take(84).collect();
        println!("  {marker} {preview}");
    }

    // Production phase over the whole report.
    let store = ObjectiveStore::new();
    let stats = process_report(&gs, &report, &store);
    println!(
        "\nscanned {} pages / {} blocks; detected {} ({} FP, {} FN vs ground truth)",
        stats.pages, stats.blocks, stats.detected, stats.false_positives, stats.false_negatives
    );

    println!("\nstructured records (paper Table 7 format):");
    for record in store.by_company("DemoCorp") {
        let objective: String = record.objective.chars().take(60).collect();
        println!(
            "  {:<62} action={:?} amount={:?} deadline={:?}",
            objective,
            record.action.as_deref().unwrap_or("-"),
            record.amount.as_deref().unwrap_or("-"),
            record.deadline.as_deref().unwrap_or("-"),
        );
    }
}
