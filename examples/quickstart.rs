//! Quickstart: the full GoalSpotter workflow in one file.
//!
//! 1. Annotate a few objectives the way domain experts do (objective-level
//!    key-value pairs — paper Table 1 / Figure 3).
//! 2. Convert them to token-level weak labels with Algorithm 1.
//! 3. Fine-tune a small transformer on the weak labels.
//! 4. Extract structured details from new, unseen objectives.
//!
//! Run with: `cargo run --release --example quickstart`

use goalspotter::core::{weak_label, Annotations, Objective, WeakLabelConfig};
use goalspotter::models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use goalspotter::models::DetailExtractor;
use goalspotter::text::labels::LabelSet;

fn main() {
    let labels = LabelSet::sustainability_goals();

    // --- 1. Coarse, objective-level annotations (paper Table 1).
    let table1 = [
        Objective::annotated(
            0,
            "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.",
            Annotations::new()
                .with("Action", "reach")
                .with("Amount", "net-zero")
                .with("Qualifier", "carbon")
                .with("Deadline", "2040"),
        ),
        Objective::annotated(
            1,
            "Restore 100% of our global water use by 2025.",
            Annotations::new()
                .with("Action", "Restore")
                .with("Amount", "100%")
                .with("Qualifier", "global water use")
                .with("Deadline", "2025"),
        ),
        Objective::annotated(
            2,
            "Reduce energy consumption by 20% by 2025 (baseline 2017).",
            Annotations::new()
                .with("Action", "Reduce")
                .with("Amount", "20%")
                .with("Qualifier", "energy consumption")
                .with("Baseline", "2017")
                .with("Deadline", "2025"),
        ),
    ];

    // --- 2. Algorithm 1: objective-level annotations -> token-level labels.
    println!("Algorithm 1 output for the first objective (paper Table 3):\n");
    let labeling = weak_label(
        &table1[0].text,
        table1[0].annotations.as_ref().expect("annotated"),
        &labels,
        WeakLabelConfig::default(),
    );
    for (token, tag) in labeling.rows(&labels) {
        println!("  {token:<12} {tag}");
    }

    // --- 3. Fine-tune a transformer on weak labels. A larger synthetic
    // training set stands in for the paper's historical annotations.
    let dataset = goalspotter::data::sustaingoals::generate(200, 7);
    let mut train: Vec<&Objective> = dataset.objectives.iter().collect();
    train.extend(table1.iter());
    println!("\nFine-tuning a small transformer on {} weakly labeled objectives...", train.len());
    let extractor = TransformerExtractor::train(
        &train,
        &labels,
        ExtractorOptions {
            model: TransformerConfig {
                d_model: 32,
                n_layers: 1,
                d_ff: 64,
                subword_budget: 400,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs: 20, lr: 2e-3, batch_size: 8, ..Default::default() },
            ..Default::default()
        },
    );
    println!(
        "  weak supervision located {:.0}% of annotated values; final loss {:.3}",
        extractor.weak_stats.overall_match_rate() * 100.0,
        extractor.train_stats.last().expect("stats").mean_loss
    );

    // --- 4. Production: extract details from new objectives.
    println!("\nExtraction on unseen objectives:\n");
    for text in [
        "Cut fleet fuel consumption by 35% by 2031.",
        "Achieve zero waste to landfill across our global sites.",
    ] {
        let details = extractor.extract(text);
        println!("  {text}\n    -> {}", details.to_json());
    }
}
