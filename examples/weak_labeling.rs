//! A close look at the paper's core contribution: the weak supervision
//! token-labeling algorithm (Algorithm 1) and its matching-policy
//! extensions (§5.3 limitation, §7 future work).
//!
//! Run with: `cargo run --example weak_labeling`

use goalspotter::core::{
    weak_label, Annotations, MatchPolicy, OccurrencePolicy, WeakLabelConfig, WeakLabelStats,
};
use goalspotter::text::labels::LabelSet;

fn show(title: &str, text: &str, ann: &Annotations, config: WeakLabelConfig, labels: &LabelSet) {
    println!("\n--- {title}");
    println!("objective:   {text}");
    let pairs: Vec<String> = ann.present().map(|(k, v)| format!("{k}={v:?}")).collect();
    println!("annotations: {}", pairs.join(", "));
    let labeling = weak_label(text, ann, labels, config);
    let tagged: Vec<String> = labeling
        .rows(labels)
        .into_iter()
        .filter(|(_, tag)| tag != "O")
        .map(|(tok, tag)| format!("{tok}/{tag}"))
        .collect();
    println!("labels:      {}", if tagged.is_empty() { "(none)".into() } else { tagged.join(" ") });
    if !labeling.unmatched.is_empty() {
        let names: Vec<&str> = labeling.unmatched.iter().map(|&k| labels.kind_name(k)).collect();
        println!("UNMATCHED:   {}", names.join(", "));
    }
}

fn main() {
    let labels = LabelSet::sustainability_goals();

    // The paper's running example (Figure 3 -> Table 3).
    let pledge = "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.";
    let pledge_ann = Annotations::new()
        .with("Action", "reach")
        .with("Amount", "net-zero")
        .with("Qualifier", "carbon")
        .with("Deadline", "2040");
    show(
        "exact matching (paper default)",
        pledge,
        &pledge_ann,
        WeakLabelConfig::default(),
        &labels,
    );

    // §5.3: exact matching misses lexical variants...
    let variant_ann = Annotations::new().with("Action", "Reach"); // expert capitalized it
    show(
        "exact matching misses a case variant",
        pledge,
        &variant_ann,
        WeakLabelConfig::default(),
        &labels,
    );
    // ...which the Normalized policy recovers (§7 future work).
    show(
        "normalized matching recovers it",
        pledge,
        &variant_ann,
        WeakLabelConfig { match_policy: MatchPolicy::Normalized, ..Default::default() },
        &labels,
    );
    // Fuzzy matching tolerates small edits.
    let typo_ann = Annotations::new().with("Qualifier", "carbonn");
    show(
        "fuzzy matching tolerates a typo",
        pledge,
        &typo_ann,
        WeakLabelConfig { match_policy: MatchPolicy::Fuzzy { max_edits: 1 }, ..Default::default() },
        &labels,
    );

    // Multi-occurrence values.
    let repeat = "By 2025 we act, and by 2025 we report.";
    let repeat_ann = Annotations::new().with("Deadline", "2025");
    show(
        "first occurrence only (Algorithm 1)",
        repeat,
        &repeat_ann,
        WeakLabelConfig::default(),
        &labels,
    );
    show(
        "all occurrences",
        repeat,
        &repeat_ann,
        WeakLabelConfig { occurrence: OccurrencePolicy::All, ..Default::default() },
        &labels,
    );

    // Supervision-quality accounting over a whole dataset.
    let dataset = goalspotter::data::sustaingoals::generate(500, 3);
    let mut stats = WeakLabelStats::new(&labels);
    for o in &dataset.objectives {
        let ann = o.annotations.as_ref().expect("annotated");
        let labeling = weak_label(&o.text, ann, &labels, WeakLabelConfig::default());
        let kinds: Vec<usize> = ann.present().filter_map(|(k, _)| labels.kind_index(k)).collect();
        stats.record(&labeling, &kinds);
    }
    println!("\n--- weak-label quality over {} objectives (exact matching)", stats.objectives);
    for (kind, ks) in stats.kinds.iter().enumerate() {
        println!(
            "  {:<10} annotated {:>4}  matched {:>4}  ({:.1}%)",
            labels.kind_name(kind),
            ks.annotated,
            ks.matched,
            ks.match_rate() * 100.0
        );
    }
    println!(
        "  overall match rate {:.1}%; {:.1}% of tokens are O",
        stats.overall_match_rate() * 100.0,
        stats.outside_fraction() * 100.0
    );
}
