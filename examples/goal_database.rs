//! The structured objective database (paper §2.4, §5): inserting extracted
//! details, then running the monitoring queries domain experts use —
//! per-company views, deadline windows, specificity ranking, and exports.
//!
//! Run with: `cargo run --example goal_database`

use goalspotter::core::ExtractedDetails;
use goalspotter::store::{ObjectiveRecord, ObjectiveStore, Predicate, Value};

fn record(company: &str, objective: &str, fields: &[(&str, &str)], score: f64) -> ObjectiveRecord {
    let mut details = ExtractedDetails::new();
    for (k, v) in fields {
        details.set(k, *v);
    }
    ObjectiveRecord::from_details(company, "CSR 2025", objective, &details, score)
}

fn main() {
    let store = ObjectiveStore::new();

    // Rows in the spirit of the paper's Table 1/Table 6.
    store.insert(&record(
        "C12",
        "30% increase in the representation of women in key leadership roles",
        &[
            ("Action", "increase"),
            ("Amount", "30%"),
            ("Qualifier", "representation of women in key leadership roles"),
        ],
        0.97,
    ));
    store.insert(&record(
        "C12",
        "Reached goal of 20% of women in key positions a year ahead of schedule",
        &[("Action", "Reached"), ("Amount", "20%"), ("Qualifier", "women in key positions")],
        0.93,
    ));
    store.insert(&record(
        "C13",
        "Reduce energy consumption by 20% by 2025 (baseline 2017)",
        &[
            ("Action", "Reduce"),
            ("Amount", "20%"),
            ("Qualifier", "energy consumption"),
            ("Baseline", "2017"),
            ("Deadline", "2025"),
        ],
        0.99,
    ));
    store.insert(&record(
        "C13",
        "Reach net-zero carbon by 2040",
        &[
            ("Action", "Reach"),
            ("Amount", "net-zero"),
            ("Qualifier", "carbon"),
            ("Deadline", "2040"),
        ],
        0.98,
    ));
    store.insert(&record(
        "C4",
        "Explore innovative value-based approaches",
        &[("Action", "Explore"), ("Qualifier", "value-based approaches")],
        0.81,
    ));

    println!("store holds {} records\n", store.len());

    // Monitoring: which commitments come due soon?
    println!("deadlines in 2024-2030:");
    for r in store.deadlines_between(2024, 2030) {
        println!("  {} — {} (deadline {})", r.company, r.objective, r.deadline.expect("deadline"));
    }

    // Specificity ranking (paper §5.1: C12/C13 are more specific).
    println!("\nspecificity by company (mean extracted fields per objective):");
    let mut spec = store.specificity_by_company();
    spec.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ordered"));
    for (company, mean) in spec {
        println!("  {company}: {mean:.2}");
    }

    // Ad-hoc predicate queries on the underlying table.
    let with_amount_no_deadline = store
        .query(&Predicate::NotNull("amount".into()).and(Predicate::IsNull("deadline_year".into())));
    println!("\nobjectives stating an amount but no deadline: {}", with_amount_no_deadline.len());
    let c13 = store.query(&Predicate::Eq("company".into(), Value::Text("C13".into())));
    println!("C13 objectives: {}", c13.len());

    // Exports.
    println!("\nCSV export preview:");
    for line in store.export_csv().lines().take(3) {
        let preview: String = line.chars().take(100).collect();
        println!("  {preview}");
    }
    let json = store.export_json();
    println!("\nJSON export is {} bytes", json.len());
}
